"""``repro serve`` — a JSON-lines front-end over :class:`SolveService`.

The wire protocol is one JSON object per line on stdin, one JSON event
per line on stdout — the simplest transport that composes with sockets,
pipes and process supervisors alike (``nc``, ``socat`` or an inetd-style
wrapper turn it into TCP unchanged).

Requests (``op`` selects the verb)::

    {"op": "submit", "id": "my-job", "file": "g22.txt",
     "rounds": 50, "target": -1234, "priority": 1, "share": 2.0}
    {"op": "submit", "id": "inline", "n": 4,
     "terms": [[0, 0, -3], [0, 1, 2], [1, 1, -3]], "launches": 40}
    {"op": "cancel", "id": "my-job"}
    {"op": "stats"}
    {"op": "drain"}      # block until every accepted job is terminal
    {"op": "shutdown"}   # drain + exit (EOF does the same)

Events (all carry ``"event"``): ``accepted``, ``incumbent`` (streamed as
the job's pools improve), ``done`` (with the final energy, vector and
summary), ``cancelled``, ``failed``, ``stats``, ``error``.  Events of
different jobs interleave; ``id`` attributes them.

Instances arrive either as a benchmark file (``file`` + optional
``format`` — same auto-detection as the solve CLI) or inline as
``n`` + ``terms`` triples ``[i, j, w]`` (``i == j`` are linear terms).
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import traceback

from repro.backends import backend_names
from repro.core.qubo import QUBOModel
from repro.io.formats import load_instance
from repro.service.cache import ProblemCache
from repro.service.job import JobStatus
from repro.service.service import (
    ServiceOverloadedError,
    SolveService,
)
from repro.solver.abs_solver import ABSSolver
from repro.solver.dabs import DABSConfig, DABSSolver

__all__ = ["build_serve_parser", "serve_main"]


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run a long-lived multi-tenant solve service reading "
        "JSON-lines requests from stdin and streaming JSON events to "
        "stdout.",
    )
    parser.add_argument(
        "--gpus", type=int, default=2, help="fleet lanes (virtual GPUs)"
    )
    parser.add_argument(
        "--blocks", type=int, default=8, help="blocks per device per job"
    )
    parser.add_argument(
        "--pool", type=int, default=20, help="pool capacity per job device"
    )
    parser.add_argument(
        "--backend",
        choices=("auto",) + backend_names(),
        default=None,
        help="compute backend for all jobs (default: env var, then auto)",
    )
    parser.add_argument("--seed", type=int, default=0, help="service RNG seed")
    parser.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help="admission control: max outstanding jobs before submit errors",
    )
    parser.add_argument(
        "--cache-capacity",
        type=int,
        default=32,
        help="prepared-problem cache entries",
    )
    parser.add_argument(
        "--islands",
        type=int,
        default=1,
        help="serve a federation of N island processes (each a full "
        "--gpus fleet) instead of one in-process service (default: 1)",
    )
    parser.add_argument(
        "--topology",
        choices=("ring", "all"),
        default="ring",
        help="island migration topology (federation mode only)",
    )
    parser.add_argument(
        "--migration-period",
        type=int,
        default=16,
        help="launches per island between elite migrations; 0 disables",
    )
    parser.add_argument(
        "--migration-k",
        type=int,
        default=4,
        help="elites each island publishes per migration",
    )
    parser.add_argument(
        "--transport",
        choices=("queue", "slab", "socket"),
        default="queue",
        help="inter-island migration transport (federation mode only)",
    )
    parser.add_argument(
        "--coalesce",
        choices=("on", "off", "auto"),
        default="auto",
        help="continuous batching: fuse pack-compatible co-tenant "
        "launches into one super-launch per lane slot (bit-exact per "
        "job; auto defers to REPRO_COALESCE, then on)",
    )
    parser.add_argument(
        "--coalesce-max-rows",
        type=int,
        default=256,
        metavar="R",
        help="row budget (total blocks) of one fused super-launch",
    )
    return parser


def _load_model(request: dict) -> QUBOModel:
    """Materialize the request's instance (file or inline terms)."""
    if "file" in request:
        model, _ = load_instance(request["file"], request.get("format", "auto"))
        return model
    if "terms" in request:
        n = int(request["n"])
        terms = {}
        for i, j, w in request["terms"]:
            key = (int(i), int(j))
            terms[key] = terms.get(key, 0) + w
        return QUBOModel.from_dict(n, terms, name=str(request.get("name", "")))
    raise ValueError('submit needs "file" or "n"+"terms"')


def _limit_kwargs(request: dict) -> dict:
    kwargs = {}
    if "target" in request:
        kwargs["target_energy"] = int(request["target"])
    if "time_limit" in request:
        kwargs["time_limit"] = float(request["time_limit"])
    if "rounds" in request:
        kwargs["max_rounds"] = int(request["rounds"])
    if "launches" in request:
        kwargs["max_launches"] = int(request["launches"])
    if not kwargs:
        kwargs["max_rounds"] = 20
    return kwargs


class _Session:
    """One serve session: tracks client ids and emits completion events.

    Bookkeeping is bounded: a job's handle and watcher thread are dropped
    the moment its terminal event is emitted (the stream is the record),
    so a long-lived serve process does not grow with total jobs served —
    and a client id becomes reusable once its job has finished.
    """

    def __init__(self, service, out) -> None:
        # service is a SolveService or a Federation — both expose the
        # submit/stats/close surface this session drives
        self.service = service
        self.out = out
        self._emit_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._submissions = 0
        #: error/failed events emitted so far (surfaced in ``stats``)
        self._errors = 0
        self._handles: dict[str, object] = {}
        self._watchers: list[threading.Thread] = []

    def emit(self, payload: dict) -> None:
        with self._emit_lock:
            if payload.get("event") in ("error", "failed"):
                self._errors += 1
            try:
                print(json.dumps(payload), file=self.out, flush=True)
            except BrokenPipeError:
                # the client hung up; keep draining jobs quietly — the
                # stdin EOF that follows ends the session cleanly
                pass

    # -- request handlers --------------------------------------------------
    def handle(self, request: dict) -> bool:
        """Dispatch one request; returns False when the session should end.

        A handler bug or unexpected service exception becomes an
        ``error`` event — it can never tear the session loop down
        (DESIGN.md §11); only ``shutdown``/EOF end the session.
        """
        try:
            return self._dispatch(request)
        except Exception:
            self.emit(
                {
                    "event": "error",
                    "op": str(request.get("op")),
                    "error": "internal error handling request",
                    "traceback": traceback.format_exc(),
                }
            )
            return True

    def _dispatch(self, request: dict) -> bool:
        op = request.get("op")
        if op == "submit":
            self._submit(request)
        elif op == "cancel":
            self._cancel(request)
        elif op == "stats":
            with self._emit_lock:
                errors = self._errors
            self.emit({"event": "stats", "errors": errors, **self.service.stats()})
        elif op == "drain":
            self.drain()
            self.emit({"event": "drained"})
        elif op == "shutdown":
            return False
        else:
            self.emit({"event": "error", "error": f"unknown op {op!r}"})
        return True

    def _submit(self, request: dict) -> None:
        with self._state_lock:
            self._submissions += 1
            client_id = str(request.get("id") or f"req-{self._submissions}")
            duplicate = client_id in self._handles
        if duplicate:
            self.emit(
                {
                    "event": "error",
                    "id": client_id,
                    "error": "duplicate job id (still running)",
                }
            )
            return
        try:
            model = _load_model(request)
            solver_cls = ABSSolver if request.get("solver") == "abs" else DABSSolver
            handle = self.service.submit(
                model,
                solver_cls=solver_cls,
                seed=request.get("seed"),
                devices=request.get("devices"),
                priority=int(request.get("priority", 0)),
                share=float(request.get("share", 1.0)),
                block=False,
                **_limit_kwargs(request),
            )
        except (OSError, ValueError, KeyError, ServiceOverloadedError) as exc:
            self.emit({"event": "error", "id": client_id, "error": str(exc)})
            return
        watcher = threading.Thread(
            target=self._watch, args=(client_id, handle), daemon=True
        )
        with self._state_lock:
            self._handles[client_id] = handle
            self._watchers.append(watcher)
        self.emit(
            {
                "event": "accepted",
                "id": client_id,
                "job": handle.job_id,
                "n": model.n,
            }
        )
        watcher.start()

    def _watch(self, client_id: str, handle) -> None:
        try:
            try:
                self._watch_job(client_id, handle)
            except Exception:
                # the watcher itself failed — emit the terminal event
                # (with the traceback) instead of dying silently and
                # leaving the client waiting forever
                self.emit(
                    {
                        "event": "failed",
                        "id": client_id,
                        "error": "internal watcher error",
                        "traceback": traceback.format_exc(),
                        "retries": 0,
                    }
                )
        finally:
            # terminal event emitted: drop the bookkeeping so the session
            # stays bounded and the client id becomes reusable
            with self._state_lock:
                self._handles.pop(client_id, None)
                try:
                    self._watchers.remove(threading.current_thread())
                except ValueError:  # pragma: no cover - drain raced us
                    pass

    def _watch_job(self, client_id: str, handle) -> None:
        # the watcher — not the service's scheduler thread — consumes
        # the incumbent stream and writes stdout, so a slow or stalled
        # client pipe can never stall scheduling for other tenants
        for update in handle.incumbents():
            self.emit(
                {
                    "event": "incumbent",
                    "id": client_id,
                    "energy": update.energy,
                    "elapsed": round(update.elapsed, 6),
                }
            )
        status = handle.status
        if status is JobStatus.DONE:
            result = handle.result()
            done = {
                "event": "done",
                "id": client_id,
                "energy": int(result.best_energy),
                "vector": "".join(map(str, result.best_vector.tolist())),
                "launches": result.launches,
                "elapsed": round(result.elapsed, 6),
                "retries": result.retries,
                "summary": result.summary(),
            }
            if result.degraded:
                done["degraded"] = True
                done["degraded_reasons"] = list(result.degraded_reasons)
            self.emit(done)
        elif status is JobStatus.CANCELLED:
            self.emit({"event": "cancelled", "id": client_id})
        else:
            failed = {"event": "failed", "id": client_id, "retries": 0}
            try:
                handle.result()
                failed["error"] = "unknown failure"  # pragma: no cover
            except Exception as exc:
                failed["error"] = str(exc)
                failed["traceback"] = traceback.format_exc()
                # supervised workers attach a structured FailureReport
                # once the retry budget is exhausted (DESIGN.md §11)
                report = getattr(exc, "report", None)
                if report is not None:
                    failed["retries"] = report.retries
                    failed["report"] = report.to_dict()
            self.emit(failed)

    def _cancel(self, request: dict) -> None:
        client_id = str(request.get("id", ""))
        with self._state_lock:
            handle = self._handles.get(client_id)
        if handle is None:
            self.emit(
                {
                    "event": "error",
                    "id": client_id,
                    "error": "unknown job id",
                }
            )
            return
        handle.cancel()

    def drain(self) -> None:
        with self._state_lock:
            handles = list(self._handles.values())
            watchers = list(self._watchers)
        for handle in handles:
            handle.wait()
        for watcher in watchers:
            watcher.join()


def serve_main(argv=None, stdin=None, stdout=None) -> int:
    """Run the serve loop until shutdown/EOF; returns an exit code."""
    args = build_serve_parser().parse_args(argv)
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    config = DABSConfig(
        num_gpus=args.gpus,
        blocks_per_gpu=args.blocks,
        pool_capacity=args.pool,
        backend=args.backend,
        coalesce={"on": True, "off": False, "auto": None}[args.coalesce],
        coalesce_max_rows=args.coalesce_max_rows,
    )
    if args.islands > 1:
        # federation mode: N island processes behind the same protocol —
        # Federation duck-types the submit/stats/close surface _Session
        # drives, so the wire format is identical
        from repro.federation import Federation

        service = Federation(
            args.islands,
            topology=args.topology,
            transport=args.transport,
            migration_period=(
                args.migration_period if args.migration_period > 0 else None
            ),
            migration_k=args.migration_k,
            default_config=config,
            max_queue=args.max_queue,
            seed=args.seed,
        )
    else:
        service = SolveService(
            devices=args.gpus,
            default_config=config,
            max_queue=args.max_queue,
            cache=ProblemCache(capacity=args.cache_capacity),
            seed=args.seed,
        )
    session = _Session(service, stdout)
    ready = {
        "event": "ready",
        "devices": args.gpus,
        "blocks": args.blocks,
        "max_queue": args.max_queue,
    }
    if args.islands > 1:
        ready["islands"] = args.islands
        ready["topology"] = args.topology
    session.emit(ready)
    with service:
        for line in stdin:
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                session.emit({"event": "error", "error": f"bad JSON: {exc}"})
                continue
            if not session.handle(request):
                break
        session.drain()
    session.emit({"event": "bye"})
    return 0
