"""``repro serve`` — the JSON-lines front-end over :class:`SolveService`.

Two transports, one protocol (:mod:`repro.server.protocol`):

* **stdin/stdout** (default) — one JSON request per line in, one JSON
  event per line out; the simplest transport that composes with pipes
  and process supervisors.
* **TCP** (``--listen [HOST:]PORT``) — the asyncio socket server
  (:mod:`repro.server`): persistent multi-client connections, durable
  jobs with ``query``/``attach`` reattachment, per-tenant quotas and
  rate limits, and a Prometheus ``/metrics`` endpoint
  (``--metrics-port``).

Requests are v1 envelopes (``{"v": 1, "op": ..., "id": ...}``); the
pre-v1 shapes (no ``"v"`` key) still work through a back-compat shim
that emits a ``DeprecationWarning`` once per session::

    {"v": 1, "op": "submit", "id": "my-job", "file": "g22.txt",
     "rounds": 50, "target": -1234, "priority": 1, "share": 2.0}
    {"v": 1, "op": "submit", "id": "inline", "n": 4,
     "terms": [[0, 0, -3], [0, 1, 2], [1, 1, -3]], "launches": 40}
    {"v": 1, "op": "cancel", "id": "my-job"}
    {"v": 1, "op": "stats"}
    {"v": 1, "op": "metrics"}    # Prometheus text exposition
    {"v": 1, "op": "drain"}      # block until every accepted job is terminal
    {"v": 1, "op": "shutdown"}   # drain + exit (EOF does the same)

Events (all carry ``"event"`` and ``"v"``): ``accepted``, ``incumbent``
(streamed as the job's pools improve), ``done`` (with the final energy,
vector and summary), ``cancelled``, ``failed``, ``stats``, ``metrics``,
``error`` (with a structured ``code``).  Events of different jobs
interleave; ``id`` attributes them.

Instances arrive either as a benchmark file (``file`` + optional
``format`` — same auto-detection as the solve CLI) or inline as
``n`` + ``terms`` triples ``[i, j, w]`` (``i == j`` are linear terms).
"""

from __future__ import annotations

import argparse
import sys
import threading
import traceback
import warnings
from dataclasses import replace

from repro.backends import backend_names
from repro.server import protocol
from repro.server.metrics import ServerMetrics, render_prometheus
from repro.server.protocol import ProtocolError, Request
from repro.service.cache import ProblemCache
from repro.service.job import JobStatus
from repro.service.service import (
    ServiceOverloadedError,
    SolveService,
)
from repro.solver.abs_solver import ABSSolver
from repro.solver.dabs import DABSConfig, DABSSolver

__all__ = ["build_serve_parser", "serve_main"]

_LEGACY_WARNING = (
    "received a pre-v1 JSON-lines request (no \"v\" envelope key); the "
    "legacy shapes are deprecated — send {\"v\": 1, ...} envelopes "
    "(repro.server.protocol)"
)


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run a long-lived multi-tenant solve service speaking "
        "the versioned JSON-lines protocol — over stdin/stdout by default, "
        "or as an asyncio TCP server with --listen.",
    )
    parser.add_argument(
        "--gpus", type=int, default=2, help="fleet lanes (virtual GPUs)"
    )
    parser.add_argument(
        "--blocks", type=int, default=8, help="blocks per device per job"
    )
    parser.add_argument(
        "--pool", type=int, default=20, help="pool capacity per job device"
    )
    parser.add_argument(
        "--backend",
        choices=("auto",) + backend_names(),
        default=None,
        help="compute backend for all jobs (default: env var, then auto)",
    )
    parser.add_argument("--seed", type=int, default=0, help="service RNG seed")
    parser.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help="admission control: max outstanding jobs before submit errors",
    )
    parser.add_argument(
        "--cache-capacity",
        type=int,
        default=32,
        help="prepared-problem cache entries",
    )
    parser.add_argument(
        "--islands",
        type=int,
        default=1,
        help="serve a federation of N island processes (each a full "
        "--gpus fleet) instead of one in-process service (default: 1)",
    )
    parser.add_argument(
        "--topology",
        choices=("ring", "all"),
        default="ring",
        help="island migration topology (federation mode only)",
    )
    parser.add_argument(
        "--migration-period",
        type=int,
        default=16,
        help="launches per island between elite migrations; 0 disables",
    )
    parser.add_argument(
        "--migration-k",
        type=int,
        default=4,
        help="elites each island publishes per migration",
    )
    parser.add_argument(
        "--transport",
        choices=("queue", "slab", "socket"),
        default="queue",
        help="inter-island migration transport (federation mode only)",
    )
    parser.add_argument(
        "--coalesce",
        choices=("on", "off", "auto"),
        default="auto",
        help="continuous batching: fuse pack-compatible co-tenant "
        "launches into one super-launch per lane slot (bit-exact per "
        "job; auto defers to REPRO_COALESCE, then on)",
    )
    parser.add_argument(
        "--coalesce-max-rows",
        type=int,
        default=256,
        metavar="R",
        help="row budget (total blocks) of one fused super-launch",
    )
    # -- network serving (repro.server) ------------------------------------
    parser.add_argument(
        "--listen",
        metavar="[HOST:]PORT",
        default=None,
        help="serve over TCP instead of stdin/stdout: bind HOST:PORT "
        "(default host 127.0.0.1; port 0 picks an ephemeral port)",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="also serve a Prometheus /metrics HTTP endpoint on PORT "
        "(0 picks an ephemeral port; TCP mode only)",
    )
    parser.add_argument(
        "--tenant-max-jobs",
        type=int,
        default=None,
        metavar="N",
        help="per-tenant quota: max outstanding jobs (TCP mode only)",
    )
    parser.add_argument(
        "--tenant-rate",
        type=float,
        default=None,
        metavar="R",
        help="per-tenant rate limit: sustained submissions/second "
        "(TCP mode only)",
    )
    parser.add_argument(
        "--tenant-burst",
        type=float,
        default=10.0,
        metavar="B",
        help="burst allowance of the per-tenant rate limiter",
    )
    parser.add_argument(
        "--job-ttl",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="keep finished jobs queryable/attachable this long "
        "(TCP mode only)",
    )
    return parser


class _Session:
    """One stdin serve session: tracks client ids and emits events.

    Bookkeeping is bounded: a job's handle and watcher thread are dropped
    the moment its terminal event is emitted (the stream is the record),
    so a long-lived serve process does not grow with total jobs served —
    and a client id becomes reusable once its job has finished.
    """

    def __init__(self, service, out) -> None:
        # service is a SolveService or a Federation — both expose the
        # submit/stats/close surface this session drives
        self.service = service
        self.out = out
        self.metrics = ServerMetrics()
        self._emit_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._submissions = 0
        #: error/failed events emitted so far (surfaced in ``stats``)
        self._errors = 0
        self._legacy_warned = False
        self._handles: dict[str, object] = {}
        self._watchers: list[threading.Thread] = []

    def emit(self, payload: dict) -> None:
        with self._emit_lock:
            if payload.get("event") in ("error", "failed"):
                self._errors += 1
            try:
                print(protocol.encode_event(payload), file=self.out, flush=True)
            except BrokenPipeError:
                # the client hung up; keep draining jobs quietly — the
                # stdin EOF that follows ends the session cleanly
                pass

    def emit_error(self, code: str, message: str, **fields) -> None:
        self.metrics.record_error(code)
        self.emit(protocol.error_payload(code, message, **fields))

    # -- request handlers --------------------------------------------------
    def handle_line(self, line: str) -> bool:
        """Decode and dispatch one request line; returns False when the
        session should end."""
        try:
            request = protocol.decode_request(line)
        except ProtocolError as exc:
            self.emit_error(exc.code, str(exc))
            return True
        self.metrics.record_frame(request.legacy)
        if request.legacy and not self._legacy_warned:
            self._legacy_warned = True
            warnings.warn(_LEGACY_WARNING, DeprecationWarning, stacklevel=3)
        return self.handle(request)

    def handle(self, request: Request) -> bool:
        """Dispatch one request; returns False when the session should end.

        A handler bug or unexpected service exception becomes an
        ``error`` event — it can never tear the session loop down
        (DESIGN.md §11); only ``shutdown``/EOF end the session.
        """
        try:
            return self._dispatch(request)
        except ProtocolError as exc:
            fields = {} if request.id is None else {"id": request.id}
            self.emit_error(exc.code, str(exc), **fields)
            return True
        except Exception:
            self.emit(
                {
                    "event": "error",
                    "op": request.op,
                    "error": "internal error handling request",
                    "traceback": traceback.format_exc(),
                }
            )
            return True

    def _dispatch(self, request: Request) -> bool:
        op = request.op
        if op == "submit":
            self._submit(request)
        elif op == "cancel":
            self._cancel(request)
        elif op == "hello":
            reply = {
                "event": "hello",
                "tenant": str(request.params.get("tenant") or "default"),
                "protocol": protocol.PROTOCOL_VERSION,
            }
            if request.id is not None:
                reply["id"] = request.id
            self.emit(reply)
        elif op == "stats":
            with self._emit_lock:
                errors = self._errors
            self.emit({"event": "stats", "errors": errors, **self.service.stats()})
        elif op == "metrics":
            payload = {
                "event": "metrics",
                "text": render_prometheus(
                    self.metrics, self.service.stats_snapshot()
                ),
            }
            if request.id is not None:
                payload["id"] = request.id
            self.emit(payload)
        elif op in ("query", "attach"):
            raise ProtocolError(
                protocol.E_BAD_REQUEST,
                f"op {op!r} needs durable job records — serve over TCP "
                "(--listen) for query/attach support",
            )
        elif op == "drain":
            self.drain()
            self.emit({"event": "drained"})
        elif op == "shutdown":
            return False
        else:  # pragma: no cover - decode_request already gates ops
            self.emit_error(protocol.E_UNKNOWN_OP, f"unknown op {op!r}")
        return True

    def _submit(self, request: Request) -> None:
        with self._state_lock:
            self._submissions += 1
            client_id = request.id or f"req-{self._submissions}"
            duplicate = client_id in self._handles
        if duplicate:
            self.emit_error(
                protocol.E_DUPLICATE_ID,
                "duplicate job id (still running)",
                id=client_id,
            )
            return
        params = request.params
        try:
            model = protocol.load_model(params)
            solver_cls = ABSSolver if params.get("solver") == "abs" else DABSSolver
            kwargs = protocol.submit_kwargs(params)
            kwargs.update(protocol.limit_kwargs(params))
            if params.get("virtual_time"):
                default = getattr(self.service, "default_config", None)
                if default is None:
                    raise ProtocolError(
                        protocol.E_BAD_REQUEST,
                        "virtual_time submissions need a service with a "
                        "default solver config",
                    )
                kwargs["config"] = replace(default, virtual_time=True)
            handle = self.service.submit(
                model, solver_cls=solver_cls, block=False, **kwargs
            )
        except ProtocolError as exc:
            self.emit_error(exc.code, str(exc), id=client_id)
            return
        except ServiceOverloadedError as exc:
            self.emit_error(protocol.E_OVERLOADED, str(exc), id=client_id)
            return
        except (OSError, ValueError, KeyError) as exc:
            self.emit_error(protocol.E_BAD_REQUEST, str(exc), id=client_id)
            return
        watcher = threading.Thread(
            target=self._watch, args=(client_id, handle), daemon=True
        )
        with self._state_lock:
            self._handles[client_id] = handle
            self._watchers.append(watcher)
        self.metrics.record_submit("default")
        self.emit(
            {
                "event": "accepted",
                "id": client_id,
                "job": handle.job_id,
                "n": model.n,
            }
        )
        watcher.start()

    def _watch(self, client_id: str, handle) -> None:
        try:
            try:
                self._watch_job(client_id, handle)
            except Exception:
                # the watcher itself failed — emit the terminal event
                # (with the traceback) instead of dying silently and
                # leaving the client waiting forever
                self.emit(
                    {
                        "event": "failed",
                        "id": client_id,
                        "code": protocol.E_INTERNAL,
                        "error": "internal watcher error",
                        "traceback": traceback.format_exc(),
                        "retries": 0,
                    }
                )
        finally:
            # terminal event emitted: drop the bookkeeping so the session
            # stays bounded and the client id becomes reusable
            with self._state_lock:
                self._handles.pop(client_id, None)
                try:
                    self._watchers.remove(threading.current_thread())
                except ValueError:  # pragma: no cover - drain raced us
                    pass

    def _watch_job(self, client_id: str, handle) -> None:
        # the watcher — not the service's scheduler thread — consumes
        # the incumbent stream and writes stdout, so a slow or stalled
        # client pipe can never stall scheduling for other tenants
        for update in handle.incumbents():
            self.emit(
                {
                    "event": "incumbent",
                    "id": client_id,
                    "energy": update.energy,
                    "elapsed": round(update.elapsed, 6),
                }
            )
        status = handle.status
        if status is JobStatus.DONE:
            result = handle.result()
            done = {
                "event": "done",
                "id": client_id,
                "energy": int(result.best_energy),
                "vector": "".join(map(str, result.best_vector.tolist())),
                "launches": result.launches,
                "elapsed": round(result.elapsed, 6),
                "retries": result.retries,
                "summary": result.summary(),
            }
            if result.degraded:
                done["degraded"] = True
                done["degraded_reasons"] = list(result.degraded_reasons)
            self.metrics.record_terminal("default", "done")
            self.emit(done)
        elif status is JobStatus.CANCELLED:
            self.metrics.record_terminal("default", "cancelled")
            self.emit({"event": "cancelled", "id": client_id})
        else:
            failed = {
                "event": "failed",
                "id": client_id,
                "code": protocol.E_JOB_FAILED,
                "retries": 0,
            }
            try:
                handle.result()
                failed["error"] = "unknown failure"  # pragma: no cover
            except Exception as exc:
                failed["error"] = str(exc)
                failed["traceback"] = traceback.format_exc()
                # supervised workers attach a structured FailureReport
                # once the retry budget is exhausted (DESIGN.md §11)
                report = getattr(exc, "report", None)
                if report is not None:
                    failed["retries"] = report.retries
                    failed["report"] = report.to_dict()
            self.metrics.record_terminal("default", "failed")
            self.emit(failed)

    def _cancel(self, request: Request) -> None:
        client_id = str(request.id or "")
        with self._state_lock:
            handle = self._handles.get(client_id)
        if handle is None:
            self.emit_error(
                protocol.E_UNKNOWN_JOB,
                f"unknown job id {client_id!r}",
                id=client_id,
            )
            return
        handle.cancel()

    def drain(self) -> None:
        with self._state_lock:
            handles = list(self._handles.values())
            watchers = list(self._watchers)
        for handle in handles:
            handle.wait()
        for watcher in watchers:
            watcher.join()


def _parse_listen(spec: str) -> tuple[str, int]:
    """``[HOST:]PORT`` → (host, port)."""
    host, _, port = spec.rpartition(":")
    return (host or "127.0.0.1", int(port))


def _build_service(args):
    """The service (or federation) behind either transport."""
    config = DABSConfig(
        num_gpus=args.gpus,
        blocks_per_gpu=args.blocks,
        pool_capacity=args.pool,
        backend=args.backend,
        coalesce={"on": True, "off": False, "auto": None}[args.coalesce],
        coalesce_max_rows=args.coalesce_max_rows,
    )
    if args.islands > 1:
        # federation mode: N island processes behind the same protocol —
        # Federation duck-types the submit/stats/close surface both
        # transports drive, so the wire format is identical
        from repro.federation import Federation

        return Federation(
            args.islands,
            topology=args.topology,
            transport=args.transport,
            migration_period=(
                args.migration_period if args.migration_period > 0 else None
            ),
            migration_k=args.migration_k,
            default_config=config,
            max_queue=args.max_queue,
            seed=args.seed,
        )
    return SolveService(
        devices=args.gpus,
        default_config=config,
        max_queue=args.max_queue,
        cache=ProblemCache(capacity=args.cache_capacity),
        seed=args.seed,
    )


def serve_main(argv=None, stdin=None, stdout=None) -> int:
    """Run the serve loop until shutdown/EOF; returns an exit code."""
    args = build_serve_parser().parse_args(argv)
    stdin = stdin if stdin is not None else sys.stdin
    stdout = stdout if stdout is not None else sys.stdout
    service = _build_service(args)

    if args.listen is not None:
        from repro.server import ServeServer, TenantQuota

        host, port = _parse_listen(args.listen)
        server = ServeServer(
            service,
            host=host,
            port=port,
            metrics_port=args.metrics_port,
            quota=TenantQuota(
                max_jobs=args.tenant_max_jobs,
                rate=args.tenant_rate,
                burst=args.tenant_burst,
            ),
            job_ttl=args.job_ttl,
        )

        def announce(srv) -> None:
            line = {
                "event": "listening",
                "host": srv.host,
                "port": srv.port,
            }
            if srv.metrics_port is not None:
                line["metrics_port"] = srv.metrics_port
            print(protocol.encode_event(line), file=stdout, flush=True)

        with service:
            return server.run(announce)

    session = _Session(service, stdout)
    ready = {
        "event": "ready",
        "protocol": protocol.PROTOCOL_VERSION,
        "devices": args.gpus,
        "blocks": args.blocks,
        "max_queue": args.max_queue,
    }
    if args.islands > 1:
        ready["islands"] = args.islands
        ready["topology"] = args.topology
    session.emit(ready)
    with service:
        for line in stdin:
            line = line.strip()
            if not line:
                continue
            if not session.handle_line(line):
                break
        session.drain()
    session.emit({"event": "bye"})
    return 0
