"""The multi-tenant solve service (DESIGN.md §8).

The paper frames DABS as a *service*: a CPU-side controller keeps a fleet
of GPUs saturated with bulk-search work while clients submit QUBO
instances.  :class:`SolveService` is that controller.  It owns one
:class:`~repro.engine.workers.FleetWorkerGroup` — the shared execution
lanes — and schedules *jobs* (independent instances, each with its own
pools, limits and RNG stream) across it:

* **job queue with priorities** — higher-priority jobs are admitted and
  scheduled first; within a priority class lanes are handed out by
  *device-share fairness* (least ``launches_submitted / share`` first),
  so a job with ``share=2`` receives twice the launch rate of a
  ``share=1`` tenant on a contended fleet.
* **admission control / backpressure** — ``max_active`` bounds how many
  jobs hold lane affinities at once (the rest wait in the priority
  queue); ``max_queue`` bounds total outstanding jobs, and ``submit``
  blocks (or raises :class:`ServiceOverloadedError`) when full.
* **cancellation** — :meth:`JobHandle.cancel` stops new launches at the
  next scheduling point; in-flight launches drain, nothing leaks, and a
  job cancelled mid-flight yields its partial result.
* **streaming incumbents** — every new per-job best is pushed to the
  job's handle (and optional callback) the moment its completion folds,
  the live form of :class:`~repro.solver.result.SolveResult.history`.
* **content-addressed preparation** — repeat submissions of the same Q
  matrix reuse the backend-resident prepared representation via
  :class:`~repro.service.cache.ProblemCache`.

Execution model: one scheduler thread owns all solver-side state (pools,
RNG, drivers) — the single-policy-thread rule of the async engine
(DESIGN.md §7) carried over — while the fleet lanes run launches.  A job
requesting ``d`` devices gets ``d`` lane *affinities* (its per-device
state is resident on those lanes, as matrices are resident on a GPU);
multiple jobs mapped to one lane interleave at launch granularity through
the lane FIFO.

Determinism: a job with ``config.virtual_time=True`` is scheduled with
the same event-driven replay the async engine uses, merging completions
in ``(launch_seq, device)`` order — its results are bit-exact with a
direct ``solve()`` of the same solver, no matter what else the fleet is
running (asserted by ``tests/service/test_service.py``).  Free-running
jobs insert completions as-of-arrival and are timing-dependent, exactly
like ``engine="async"``.
"""

from __future__ import annotations

import itertools
import threading
import time
import warnings
from dataclasses import replace

import numpy as np

from repro.core.packet import PacketBatch
from repro.engine.async_engine import VirtualTimeReplay
from repro.engine.coalesce import PackSegment, pack_key
from repro.engine.workers import FleetWorkerGroup, WorkerError
from repro.resilience import RetryPolicy
from repro.service.cache import ProblemCache
from repro.service.job import IncumbentUpdate, JobHandle, JobStatus
from repro.service.stats import CacheStatsSnapshot, CoalesceStats, ServiceStats
from repro.solver.dabs import DABSConfig, DABSSolver, _AsyncDriver
from repro.solver.result import SolveResult
from repro.solver.termination import SolveLimits

__all__ = [
    "ServiceClosedError",
    "ServiceOverloadedError",
    "SolveService",
    "solve",
]

#: seconds the scheduler waits on the completion stream per iteration
_POLL_INTERVAL = 0.005


class ServiceClosedError(RuntimeError):
    """The service is shutting down and no longer accepts jobs."""


class ServiceOverloadedError(RuntimeError):
    """Admission control rejected the job (queue full)."""


def fair_pick(candidates):
    """The scheduling policy: pick one ``(job, device)`` candidate.

    Highest priority wins; within a priority class the job with the
    least *weighted* service (``weighted``, advanced by ``1 / share``
    per submitted launch) goes first — long-run launch rates converge to
    the share ratio on a contended lane.  The counter is baselined to
    the least-served active tenant at admission, so a newcomer shares
    the lane immediately instead of starving incumbents while it "caught
    up" to their lifetime totals.  Admission order, then device index,
    break ties, which makes the policy deterministic for a fixed
    candidate set.
    """
    return min(
        candidates,
        key=lambda c: (
            -c[0].priority,
            c[0].weighted,
            c[0].seq,
            c[1],
        ),
    )


class _Job:
    """Scheduler-side state of one job (touched only by the scheduler
    thread once admitted; ``cancel_requested`` is the cross-thread flag)."""

    __slots__ = (
        "id",
        "seq",
        "handle",
        "priority",
        "share",
        "limits",
        "spec",
        "solver",
        "driver",
        "replay",
        "lanes",
        "dev_seq",
        "dev_inflight",
        "inflight",
        "assigned",
        "weighted",
        "completed",
        "started",
        "stopping",
        "finalized",
        "cancel_requested",
        "on_improvement",
        "virtual_time",
        "error",
    )

    def __init__(self, job_id, seq, handle, priority, share, limits, spec):
        self.id = job_id
        self.seq = seq
        self.handle = handle
        self.priority = priority
        self.share = share
        self.limits = limits
        #: deferred construction recipe (model, config, solver seed,
        #: solver_cls) — None when a pre-built solver was submitted
        self.spec = spec
        self.solver = None
        self.driver = None
        self.replay = None
        self.lanes = ()
        self.dev_seq = []
        self.dev_inflight = []
        self.inflight = 0
        self.assigned = 0
        self.weighted = 0.0
        self.completed = 0
        self.started = False
        self.stopping = False
        self.finalized = False
        self.cancel_requested = False
        self.on_improvement = None
        self.virtual_time = False
        self.error = None

    # -- scheduling hooks (scheduler thread only) --------------------------
    def can_submit(self, device_id: int) -> bool:
        if self.stopping or self.error is not None:
            return False
        depth = self.solver.config.inflight_per_device
        if self.dev_inflight[device_id] >= depth:
            return False
        if self.virtual_time:
            return device_id in self.replay.pending
        return self.driver.can_submit(device_id)

    def take_batch(self, device_id: int) -> tuple[int, PacketBatch] | None:
        if self.virtual_time:
            return self.replay.take_pending(device_id)
        batch = self.driver.next_batch(device_id)
        if batch is None:
            return None
        self.dev_seq[device_id] += 1
        return self.dev_seq[device_id], batch

    def done_submitting(self) -> bool:
        if self.virtual_time:
            return self.replay.stopped
        return not any(
            self.driver.can_submit(d) for d in range(len(self.lanes))
        )

    def halt(self) -> None:
        self.stopping = True
        if self.driver is not None:
            self.driver.halt()
        if self.replay is not None:
            self.replay.halt()


class SolveService:
    """Long-lived multi-tenant scheduler over one shared device fleet."""

    def __init__(
        self,
        devices: int = 2,
        *,
        default_config: DABSConfig | None = None,
        lane_depth: int = 2,
        max_active: int | None = None,
        max_queue: int | None = None,
        cache: ProblemCache | None = None,
        seed: int | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        if devices < 1:
            raise ValueError("devices must be >= 1")
        if lane_depth < 1:
            raise ValueError("lane_depth must be >= 1")
        if max_active is not None and max_active < 1:
            raise ValueError("max_active must be >= 1 or None")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be >= 1 or None")
        self.num_devices = devices
        self.lane_depth = lane_depth
        self.max_active = max_active
        self.max_queue = max_queue
        self.cache = cache if cache is not None else ProblemCache()
        self.default_config = default_config or DABSConfig(
            num_gpus=devices, blocks_per_gpu=8, pool_capacity=20
        )
        #: fleet-wide supervision policy (DESIGN.md §11): an explicit
        #: *retry* wins, else the default config's ``retry_policy``, else
        #: fail-fast (a worker fault fails the owning job immediately)
        self.retry = retry if retry is not None else self.default_config.retry_policy
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()
        self._space = threading.Condition(self._lock)
        self._jobs: dict[str, _Job] = {}
        self._pending: list[_Job] = []
        self._active: dict[str, _Job] = {}
        self._outstanding = 0
        self._lane_inflight = [0] * devices
        #: cumulative launches submitted / completed per lane — the
        #: utilization counters federation benchmarks attribute
        #: throughput with (monotonic over the service lifetime)
        self._lane_launches = [0] * devices
        self._lane_completed = [0] * devices
        self._lane_population = [0] * devices
        #: continuous-batching counters (DESIGN.md §12): super-launches
        #: issued, launches packed into them and total packed rows, per
        #: lane; ``_pack_rows_max`` is the largest single pack seen
        self._lane_packs = [0] * devices
        self._lane_pack_segments = [0] * devices
        self._lane_pack_rows = [0] * devices
        self._pack_rows_max = 0
        #: per-lane affinity index: the (job, device) pairs resident on
        #: each lane (scheduler-thread writes; fixed between admission
        #: and finalization, so _refill never rescans all jobs)
        self._lane_members: list[list[tuple[_Job, int]]] = [
            [] for _ in range(devices)
        ]
        self._counter = itertools.count(1)
        self._group: FleetWorkerGroup | None = None
        self._thread: threading.Thread | None = None
        self._closing = False
        self._closed = False

    # -- lifecycle ---------------------------------------------------------
    def _ensure_running_locked(self) -> None:
        """Start the fleet and scheduler thread once (caller holds _lock)."""
        if self._thread is not None:
            return
        self._group = FleetWorkerGroup(self.num_devices, retry=self.retry)
        self._thread = threading.Thread(
            target=self._loop,
            name="solve-service-scheduler",
            daemon=True,
        )
        self._thread.start()

    def close(self, cancel: bool = False, timeout: float | None = None) -> None:
        """Stop accepting jobs and shut the fleet down.

        With ``cancel=False`` (default) outstanding jobs run to
        completion first — a drain.  ``cancel=True`` cancels everything
        still queued or running.  Idempotent.

        *timeout* bounds the shutdown (DESIGN.md §11): when the scheduler
        has not drained within *timeout* seconds, every outstanding job
        is force-cancelled; a scheduler still stuck after that (a lane
        hung inside a launch) is abandoned with a ``RuntimeWarning`` —
        its threads are daemonic, so the process can always exit.
        """
        with self._lock:
            self._closing = True
            job_ids = list(self._jobs) if cancel else []
            self._space.notify_all()
        for job_id in job_ids:
            self._request_cancel(job_id)
        abandoned = False
        if self._thread is not None:
            self._thread.join(timeout)
            if self._thread.is_alive():
                # the drain is stuck (a wedged job, a hung lane): cancel
                # everything and give the loop one last grace period
                with self._lock:
                    job_ids = list(self._jobs)
                for job_id in job_ids:
                    self._request_cancel(job_id)
                self._thread.join(5.0)
            if self._thread.is_alive():
                abandoned = True
                warnings.warn(
                    "solve-service scheduler did not exit within the close "
                    "timeout; abandoning its daemon thread",
                    RuntimeWarning,
                    stacklevel=2,
                )
            else:
                self._thread = None
        if self._group is not None:
            # joining the lanes of an abandoned scheduler could hang on
            # the same stuck launch — skip the wait in that case
            self._group.close(wait=not abandoned)
            if not abandoned:
                self._group = None
        self._closed = True

    def __enter__(self) -> "SolveService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- submission --------------------------------------------------------
    def submit(
        self,
        model,
        *,
        config: DABSConfig | None = None,
        seed: int | None = None,
        solver_cls: type[DABSSolver] = DABSSolver,
        devices: int | None = None,
        target_energy: int | None = None,
        time_limit: float | None = None,
        max_rounds: int | None = None,
        max_launches: int | None = None,
        priority: int = 0,
        share: float = 1.0,
        on_improvement=None,
        block: bool = True,
        timeout: float | None = None,
    ) -> JobHandle:
        """Queue one QUBO instance as a job; returns its handle.

        The solver (pools, per-device state) is constructed at admission
        on the scheduler thread, reusing the prepared-problem cache.
        *devices* caps the fleet lanes the job occupies (default: the
        config's ``num_gpus``, clamped to the fleet); *share* weights its
        launch rate against other tenants of the same *priority*.
        ``block=False`` raises :class:`ServiceOverloadedError` instead of
        waiting when ``max_queue`` is reached.
        """
        cfg = config or self.default_config
        want = devices if devices is not None else cfg.num_gpus
        if want < 1:
            raise ValueError("devices must be >= 1")
        cfg = replace(cfg, num_gpus=min(want, self.num_devices))
        limits = SolveLimits(target_energy, time_limit, max_rounds, max_launches)
        if seed is None:
            with self._lock:
                seed = int(self._rng.integers(2**63))
        spec = (model, cfg, seed, solver_cls)
        return self._enqueue(
            spec, None, cfg, limits, priority, share, on_improvement, block, timeout
        )

    def submit_solver(
        self,
        solver: DABSSolver,
        *,
        target_energy: int | None = None,
        time_limit: float | None = None,
        max_rounds: int | None = None,
        max_launches: int | None = None,
        priority: int = 0,
        share: float = 1.0,
        on_improvement=None,
        block: bool = True,
        timeout: float | None = None,
    ) -> JobHandle:
        """Queue a pre-built solver as one job (the ``solve(service=…)``
        path).  The solver's pools and device state are adopted as the
        job's state, so back-to-back submissions continue where the last
        run left off, exactly like repeated ``solve()`` calls.
        """
        if solver.config.num_gpus > self.num_devices:
            raise ValueError(
                f"solver wants {solver.config.num_gpus} devices, the fleet "
                f"has {self.num_devices} lanes"
            )
        limits = SolveLimits(target_energy, time_limit, max_rounds, max_launches)
        return self._enqueue(
            None, solver, solver.config, limits, priority, share, on_improvement, block, timeout
        )

    def _enqueue(
        self, spec, solver, cfg, limits, priority, share, on_improvement, block, timeout
    ) -> JobHandle:
        if share <= 0:
            raise ValueError("share must be > 0")
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                if self._closing:
                    raise ServiceClosedError("service is closed")
                if self.max_queue is None or self._outstanding < self.max_queue:
                    break
                if not block:
                    raise ServiceOverloadedError(
                        f"job queue full ({self.max_queue} outstanding)"
                    )
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise ServiceOverloadedError(
                            f"job queue full ({self.max_queue} outstanding); "
                            f"timed out after {timeout}s"
                        )
                self._space.wait(remaining)
            seq = next(self._counter)
            job_id = f"job-{seq}"
            handle = JobHandle(job_id, self)
            job = _Job(job_id, seq, handle, priority, share, limits, spec)
            job.solver = solver
            job.on_improvement = on_improvement
            job.virtual_time = cfg.virtual_time
            self._jobs[job_id] = job
            self._outstanding += 1
            self._pending.append(job)
            self._pending.sort(key=lambda j: (-j.priority, j.seq))
            # started inside the same critical section as the enqueue: a
            # concurrent close() either saw _closing first (we raised
            # above) or joins the thread we start here, so no fleet can
            # come up on an already-closed service
            self._ensure_running_locked()
        return handle

    def solve_many(self, requests) -> list[SolveResult]:
        """Submit a batch of jobs and wait for all results, in order.

        Each request is a dict of :meth:`submit` keyword arguments plus a
        ``"model"`` key — the in-process client surface the experiment
        harness drives sweeps through.
        """
        handles = [
            self.submit(request.pop("model"), **request)
            for request in (dict(r) for r in requests)
        ]
        return [handle.result() for handle in handles]

    # -- introspection -----------------------------------------------------
    def job_stats(self, job_id: str) -> dict:
        """Thread-safe scheduling snapshot of one *outstanding* job.

        Finalized jobs are dropped from the registry (their results live
        on in the handles); asking for one raises ``KeyError``.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(job_id)
            return {
                "status": job.handle.status,
                "priority": job.priority,
                "share": job.share,
                "devices": len(job.lanes),
                "launches_submitted": job.assigned,
                "launches_completed": job.completed,
                "inflight": job.inflight,
            }

    def stats_snapshot(self) -> ServiceStats:
        """Service-wide typed snapshot (lanes, queue depths, cache counters).

        ``lane_launches`` / ``lane_completed`` are cumulative per-lane
        utilization counters (launches submitted to and collected from
        each lane over the service lifetime); ``lane_inflight`` is the
        instantaneous depth.  Both are surfaced verbatim through the
        ``repro serve`` ``stats`` event so federation benchmarks can
        attribute aggregate throughput lane by lane.

        ``coalesce`` reports continuous batching (DESIGN.md §12): packs
        issued, launches packed into them (``segments``), launch slots
        saved by fusing (``launches_saved = segments - packs``) and
        packed-row shape, per lane and aggregated.

        The dict projection of this structure (``stats()``) is what
        crosses process and wire boundaries; the Prometheus exporter
        reads the typed form directly (DESIGN.md §13).
        """
        with self._lock:
            packs = sum(self._lane_packs)
            packed_segments = sum(self._lane_pack_segments)
            packed_rows = sum(self._lane_pack_rows)
            return ServiceStats(
                devices=self.num_devices,
                pending=len(self._pending),
                active=len(self._active),
                outstanding=self._outstanding,
                lane_inflight=tuple(self._lane_inflight),
                lane_launches=tuple(self._lane_launches),
                lane_completed=tuple(self._lane_completed),
                coalesce=CoalesceStats(
                    packs=packs,
                    segments=packed_segments,
                    launches_saved=packed_segments - packs,
                    rows_mean=packed_rows / packs if packs else 0.0,
                    rows_max=self._pack_rows_max,
                    pack_splits=(
                        self._group.pack_splits if self._group is not None else 0
                    ),
                    lane_packs=tuple(self._lane_packs),
                    lane_segments=tuple(self._lane_pack_segments),
                    lane_rows=tuple(self._lane_pack_rows),
                ),
                cache=CacheStatsSnapshot(
                    entries=len(self.cache),
                    hits=self.cache.stats.hits,
                    misses=self.cache.stats.misses,
                    evictions=self.cache.stats.evictions,
                ),
            )

    def stats(self) -> dict:
        """Dict projection of :meth:`stats_snapshot` (the wire layout)."""
        return self.stats_snapshot().to_dict()

    # -- cancellation ------------------------------------------------------
    def _request_cancel(self, job_id: str) -> None:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.finalized:
                return
            job.cancel_requested = True
            if job in self._pending:
                # never admitted: finalize right here, no partial result
                self._pending.remove(job)
                self._finalize_locked(job, JobStatus.CANCELLED, None, None)

    # -- scheduler loop (one thread owns everything below) -----------------
    def _loop(self) -> None:
        group = self._group
        while True:
            try:
                completion = group.next_completion(_POLL_INTERVAL)
            except WorkerError as err:
                self._on_worker_error(err)
                completion = None
            if completion is not None:
                self._on_completion(completion)
            self._apply_cancels()
            self._admit()
            self._check_time_limits()
            self._refill()
            self._sweep_finalizable()
            with self._lock:
                if self._closing and not self._pending and not self._active:
                    return

    def _admit(self) -> None:
        while True:
            with self._lock:
                if not self._pending:
                    return
                if (
                    self.max_active is not None
                    and len(self._active) >= self.max_active
                ):
                    return
                job = self._pending.pop(0)
            try:
                self._activate(job)
            except Exception as exc:  # bad model/config: fail only this job
                job.error = exc
                with self._lock:
                    self._finalize_locked(job, JobStatus.FAILED, None, exc)

    def _activate(self, job: _Job) -> None:
        if job.solver is None:
            model, cfg, seed, solver_cls = job.spec
            prepared = self.cache.prepare(model, cfg.backend)
            job.solver = solver_cls(model, cfg, seed=seed, prepared=prepared)
            job.spec = None
        num = job.solver.config.num_gpus
        job.driver = _AsyncDriver(job.solver, job.limits, time.perf_counter())
        if job.virtual_time:
            # the engine's canonical virtual-time state machine, advanced
            # one completion at a time between other tenants' work
            job.replay = VirtualTimeReplay(job.driver)
        job.dev_seq = [0] * num
        job.dev_inflight = [0] * num
        # fairness baseline: start at the least-served active tenant so
        # the newcomer interleaves immediately instead of monopolizing
        # lanes until its lifetime counter catches up
        job.weighted = min(
            (other.weighted for other in self._active.values()), default=0.0
        )
        with self._lock:
            # affinity: the job's per-device state is resident on the
            # least-populated lanes, like matrices resident on a GPU
            order = sorted(
                range(self.num_devices),
                key=lambda lane: (self._lane_population[lane], lane),
            )
            job.lanes = tuple(order[:num])
            for device_id, lane in enumerate(job.lanes):
                self._lane_population[lane] += 1
                self._lane_members[lane].append((job, device_id))
            self._active[job.id] = job

    def _apply_cancels(self) -> None:
        for job in list(self._active.values()):
            if job.cancel_requested and not job.stopping and not job.finalized:
                job.halt()

    def _check_time_limits(self) -> None:
        for job in self._active.values():
            if (
                not job.virtual_time
                and not job.stopping
                and not job.finalized
                and job.driver.idle() == "stop"
            ):
                job.halt()

    def _refill(self) -> None:
        for lane in range(self.num_devices):
            while self._lane_inflight[lane] < self.lane_depth:
                candidates = [
                    (job, device_id)
                    for job, device_id in self._lane_members[lane]
                    if not job.finalized and job.can_submit(device_id)
                ]
                if not candidates:
                    break
                job, device_id = fair_pick(candidates)
                try:
                    entry = job.take_batch(device_id)
                except Exception as exc:
                    self._fail_job(job, exc)
                    continue
                if entry is None:
                    continue
                seq, batch = entry
                gpu = job.solver.gpus[device_id]
                segments = [
                    PackSegment(device_id, seq, gpu, batch, (job.id, device_id))
                ]
                seg_jobs = [job]
                # continuous batching (DESIGN.md §12): fill the lane slot
                # with every pack-compatible co-tenant launch, in the same
                # fair order fair_pick would have served them
                key = (
                    pack_key(gpu)
                    if job.solver.config.coalesce_enabled()
                    else None
                )
                if key is not None and len(candidates) > 1:
                    self._gather_pack_mates(
                        job, device_id, key, candidates, segments, seg_jobs
                    )
                if len(segments) == 1:
                    self._group.submit_launch(
                        lane, device_id, seq, gpu, batch, tag=(job.id, device_id)
                    )
                else:
                    self._group.submit_packed(lane, segments)
                for seg, seg_job in zip(segments, seg_jobs):
                    seg_job.started = True
                    seg_job.handle._mark_running()
                    seg_job.inflight += 1
                    seg_job.dev_inflight[seg.device_id] += 1
                    seg_job.assigned += 1
                    seg_job.weighted += 1.0 / seg_job.share
                with self._lock:
                    # each segment is a launch equivalent: it holds one
                    # in-flight slot (released per completion) and counts
                    # toward lane utilization — a pack may overshoot
                    # lane_depth by design, it costs one executor pass
                    self._lane_inflight[lane] += len(segments)
                    self._lane_launches[lane] += len(segments)
                    if len(segments) > 1:
                        rows = sum(len(seg.batch) for seg in segments)
                        self._lane_packs[lane] += 1
                        self._lane_pack_segments[lane] += len(segments)
                        self._lane_pack_rows[lane] += rows
                        if rows > self._pack_rows_max:
                            self._pack_rows_max = rows

    def _gather_pack_mates(
        self, head, head_device, key, candidates, segments, seg_jobs
    ) -> None:
        """Extend a pack with compatible mates from *candidates*.

        Mates join in fair-share order (the order repeated ``fair_pick``
        calls would have served them), each contributing at most one
        segment per ``(job, device)`` — two launches of one device in the
        same pack would break its sequential-state semantics.  The packed
        row total must stay within both the head's and each mate's
        ``coalesce_max_rows``.
        """
        rows = segments[0].gpu.num_blocks
        head_cap = head.solver.config.coalesce_max_rows
        mates = sorted(
            (
                c
                for c in candidates
                if not (c[0] is head and c[1] == head_device)
            ),
            key=lambda c: (-c[0].priority, c[0].weighted, c[0].seq, c[1]),
        )
        for job, device_id in mates:
            cfg = job.solver.config
            if not cfg.coalesce_enabled():
                continue
            gpu = job.solver.gpus[device_id]
            if pack_key(gpu) != key:  # also rejects stub devices
                continue
            if rows + gpu.num_blocks > min(head_cap, cfg.coalesce_max_rows):
                continue
            try:
                entry = job.take_batch(device_id)
            except Exception as exc:
                self._fail_job(job, exc)
                continue
            if entry is None:
                continue
            seq, batch = entry
            segments.append(
                PackSegment(device_id, seq, gpu, batch, (job.id, device_id))
            )
            seg_jobs.append(job)
            rows += gpu.num_blocks

    def _on_completion(self, completion) -> None:
        job_id, device_id = completion.tag
        job = self._jobs.get(job_id)
        if job is None:
            return
        lane = job.lanes[device_id]
        with self._lock:
            self._lane_inflight[lane] -= 1
            self._lane_completed[lane] += 1
        job.inflight -= 1
        job.dev_inflight[device_id] -= 1
        job.completed += 1
        if job.finalized or job.error is not None:
            return
        best_before = job.driver.state.best_energy
        try:
            if job.virtual_time:
                if not job.replay.stopped:
                    job.replay.on_completion(completion)
                    if job.replay.take_reset_request():
                        self._queue_resets(job)
            else:
                action = job.driver.collect(completion)
                if not job.stopping:
                    if action == "stop":
                        job.halt()
                    elif action == "restart":
                        self._queue_resets(job)
        except Exception as exc:
            self._fail_job(job, exc)
            return
        best_after = job.driver.state.best_energy
        if best_after < best_before:
            self._emit_incumbent(job, best_after)

    def _emit_incumbent(self, job: _Job, energy: int) -> None:
        update = IncumbentUpdate(
            job_id=job.id,
            energy=int(energy),
            vector=job.driver.state.best_vector.copy(),
            elapsed=time.perf_counter() - job.driver.start,
        )
        job.handle._push_incumbent(update)
        if job.on_improvement is not None:
            try:
                job.on_improvement(update)
            except Exception as exc:
                self._fail_job(job, exc)

    def _queue_resets(self, job: _Job) -> None:
        """§IV.B restart: queue one reset per job device behind its lane's
        in-flight launches (only this job's device state is touched).
        The 3-element tag marks reset failures, which hold no launch slot.
        """
        for device_id, lane in enumerate(job.lanes):
            self._group.run_on(
                lane,
                job.solver.gpus[device_id].reset,
                tag=(job.id, device_id, "reset"),
            )

    def _on_worker_error(self, err: WorkerError) -> None:
        if err.tag is None:  # pragma: no cover - untagged lane failure
            raise err
        if len(err.tag) == 3:  # a failed reset: no launch slot to release
            job = self._jobs.get(err.tag[0])
            if job is not None and not job.finalized:
                self._fail_job(job, err)
            return
        job_id, device_id = err.tag
        job = self._jobs.get(job_id)
        if job is None:  # pragma: no cover - failure of an unknown job
            return
        lane = job.lanes[device_id]
        with self._lock:
            self._lane_inflight[lane] -= 1
        job.inflight -= 1
        job.dev_inflight[device_id] -= 1
        if not job.finalized:
            self._fail_job(job, err)

    def _fail_job(self, job: _Job, exc: BaseException) -> None:
        job.error = exc
        job.halt()

    def _sweep_finalizable(self) -> None:
        for job in list(self._active.values()):
            if job.finalized or job.inflight:
                continue
            if not job.started:
                # admitted but never scheduled: only cancellation or an
                # activation-time failure can retire it without a result
                if job.error is not None:
                    with self._lock:
                        self._finalize_locked(job, JobStatus.FAILED, None, job.error)
                elif job.cancel_requested:
                    with self._lock:
                        self._finalize_locked(job, JobStatus.CANCELLED, None, None)
                continue
            if job.error is not None:
                status, result = JobStatus.FAILED, None
            elif job.done_submitting():
                if job.cancel_requested:
                    status = JobStatus.CANCELLED
                else:
                    status = JobStatus.DONE
                result = job.driver.result()
                result.retries = self._group.retry_counts.get(job.id, 0)
            else:
                continue
            with self._lock:
                self._finalize_locked(job, status, result, job.error)

    def _finalize_locked(
        self,
        job: _Job,
        status: JobStatus,
        result: SolveResult | None,
        error: BaseException | None,
    ) -> None:
        job.finalized = True
        self._active.pop(job.id, None)
        # supervision tallies are per job and the fleet is long-lived:
        # drop them here (after the result snapshotted retry_counts) so
        # the accounting dicts stay bounded
        self._group.forget(job.id)
        # nothing of a finalized job can still be in flight (finalization
        # requires inflight == 0), so the registry entry — and with it the
        # job's solver state — is dropped; the handle keeps the result
        self._jobs.pop(job.id, None)
        for lane in job.lanes:
            self._lane_population[lane] -= 1
            self._lane_members[lane] = [
                member for member in self._lane_members[lane]
                if member[0] is not job
            ]
        self._outstanding -= 1
        self._space.notify_all()
        job.handle._finalize(status, result, error)


def solve(
    model,
    config: DABSConfig | None = None,
    seed: int | None = None,
    *,
    devices: int | None = None,
    **limits,
) -> SolveResult:
    """One-shot convenience: stand a service up, run one job, tear down.

    Mostly useful in examples and tests; a real deployment keeps one
    long-lived :class:`SolveService` and submits many jobs to it.
    """
    cfg = config or DABSConfig(num_gpus=devices or 2, blocks_per_gpu=8)
    fleet = devices if devices is not None else cfg.num_gpus
    with SolveService(devices=fleet, default_config=cfg) as service:
        return service.submit(model, config=cfg, seed=seed, **limits).result()
