"""Multi-tenant solve service: many QUBO instances over one device fleet.

The paper's framework is a *service* — a CPU-side controller that keeps a
GPU fleet saturated while clients submit instances.  This package is that
layer (DESIGN.md §8):

* :class:`SolveService` — the long-lived scheduler: a priority job queue
  with per-job device-share fairness, admission control/backpressure,
  cancellation, and streaming incumbent updates.
* :class:`ProblemCache` — content-addressed (Q-matrix hash → prepared
  backend representation) reuse across repeat submissions.
* :class:`JobHandle` / :class:`JobStatus` / :class:`IncumbentUpdate` —
  the client surface.
* :func:`solve` — one-shot convenience (one job on a throwaway service);
  :meth:`DABSSolver.solve(service=…) <repro.solver.dabs.DABSSolver.solve>`
  is the equivalent wrapper for a pre-built solver.
* :func:`serve_main` — the ``repro serve`` JSON-lines front-end.
"""

from repro.service.cache import CacheStats, ProblemCache, problem_key
from repro.service.job import (
    IncumbentUpdate,
    JobCancelledError,
    JobHandle,
    JobStatus,
)
from repro.service.service import (
    ServiceClosedError,
    ServiceOverloadedError,
    SolveService,
    solve,
)
from repro.service.stats import (
    CacheStatsSnapshot,
    CoalesceStats,
    FederationStats,
    ServiceStats,
)

__all__ = [
    "CacheStats",
    "CacheStatsSnapshot",
    "CoalesceStats",
    "FederationStats",
    "IncumbentUpdate",
    "JobCancelledError",
    "JobHandle",
    "JobStatus",
    "ProblemCache",
    "ServiceClosedError",
    "ServiceOverloadedError",
    "ServiceStats",
    "SolveService",
    "problem_key",
    "serve_main",
    "solve",
]


def serve_main(argv=None, stdin=None, stdout=None) -> int:
    """Entry point of ``repro serve`` (lazy import to keep this light)."""
    from repro.service.serve import serve_main as _serve_main

    return _serve_main(argv, stdin=stdin, stdout=stdout)
