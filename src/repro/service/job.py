"""Jobs: the unit of multi-tenant work (DESIGN.md §8).

A *job* is one QUBO instance solved under its own limits, pools and RNG
stream, scheduled by a :class:`~repro.service.SolveService` across the
shared device fleet.  The client-facing surface is :class:`JobHandle` —
a thread-safe future-like object that also streams *incumbent updates*
(every new per-job global best) as the pools improve, the service
analogue of :class:`~repro.solver.result.SolveResult.history` delivered
live instead of post-hoc.
"""

from __future__ import annotations

import enum
import queue
import threading
from dataclasses import dataclass

import numpy as np

from repro.solver.result import SolveResult

__all__ = [
    "IncumbentUpdate",
    "JobCancelledError",
    "JobHandle",
    "JobStatus",
]


class JobStatus(enum.Enum):
    """Lifecycle of a service job."""

    #: admitted to the service but not yet scheduled on any lane
    QUEUED = "queued"
    #: at least one launch submitted, result pending
    RUNNING = "running"
    #: finished under its own limits; result available
    DONE = "done"
    #: cancelled by the client; a partial result is available when the
    #: job had started, otherwise :meth:`JobHandle.result` raises
    CANCELLED = "cancelled"
    #: a device worker or the host-side policy raised; result raises
    FAILED = "failed"

    @property
    def terminal(self) -> bool:
        return self in (JobStatus.DONE, JobStatus.CANCELLED, JobStatus.FAILED)


class JobCancelledError(RuntimeError):
    """The job was cancelled before producing any result."""


@dataclass(frozen=True)
class IncumbentUpdate:
    """One streamed new-best event of a job."""

    #: the producing job
    job_id: str
    #: the improved energy
    energy: int
    #: a copy of the improving solution vector
    vector: np.ndarray
    #: seconds since the job started running
    elapsed: float


#: sentinel closing a job's incumbent stream
_STREAM_END = object()


class JobHandle:
    """Client-side view of one submitted job.

    All methods are thread-safe; the service finalizes the handle exactly
    once.  The incumbent stream is single-consumer: one call site should
    iterate :meth:`incumbents`.
    """

    def __init__(self, job_id: str, service) -> None:
        self.job_id = job_id
        self._service = service
        self._done = threading.Event()
        self._status = JobStatus.QUEUED
        self._result: SolveResult | None = None
        self._error: BaseException | None = None
        self._stream: queue.Queue = queue.Queue()
        self._lock = threading.Lock()

    # -- state transitions (service-side) ----------------------------------
    def _mark_running(self) -> None:
        with self._lock:
            if self._status is JobStatus.QUEUED:
                self._status = JobStatus.RUNNING

    def _push_incumbent(self, update: IncumbentUpdate) -> None:
        self._stream.put(update)

    def _finalize(
        self,
        status: JobStatus,
        result: SolveResult | None,
        error: BaseException | None = None,
    ) -> None:
        with self._lock:
            self._status = status
            self._result = result
            self._error = error
        self._stream.put(_STREAM_END)
        self._done.set()

    # -- client surface ----------------------------------------------------
    @property
    def status(self) -> JobStatus:
        with self._lock:
            return self._status

    def done(self) -> bool:
        """True once the job reached a terminal state."""
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until terminal; returns False on timeout."""
        return self._done.wait(timeout)

    def cancel(self) -> None:
        """Request cancellation; in-flight launches drain, no new ones
        are scheduled.  Idempotent; a no-op on terminal jobs."""
        self._service._request_cancel(self.job_id)

    def result(self, timeout: float | None = None) -> SolveResult:
        """The job's :class:`SolveResult`, blocking until terminal.

        Raises the original error for FAILED jobs, ``TimeoutError`` on
        timeout, and :class:`JobCancelledError` for jobs cancelled before
        their first launch; a job cancelled mid-flight returns its
        partial result (everything folded before the cancel).
        """
        if not self._done.wait(timeout):
            raise TimeoutError(f"job {self.job_id} still {self.status.value}")
        with self._lock:
            if self._error is not None:
                raise self._error
            if self._result is None:
                raise JobCancelledError(
                    f"job {self.job_id} was cancelled before it started"
                )
            return self._result

    def incumbents(self, timeout: float | None = None):
        """Iterate streamed :class:`IncumbentUpdate` events until the job
        ends.  *timeout* bounds the wait for each event (``TimeoutError``
        when exceeded); ``None`` waits indefinitely (the stream always
        terminates when the job does)."""
        while True:
            try:
                item = self._stream.get(timeout=timeout)
            except queue.Empty:
                raise TimeoutError(
                    f"no incumbent update from job {self.job_id} "
                    f"within {timeout}s"
                ) from None
            if item is _STREAM_END:
                return
            yield item

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<JobHandle {self.job_id} {self.status.value}>"
