"""Content-addressed cache of prepared problems (DESIGN.md §8).

Standing a QUBO instance up on the fleet costs more than solving one
launch of it: the backend builds coupling views, CSR/ELL index structures,
(for the JIT backend) compiled kernel handles, and (for the cuda backend)
the device-resident coupling tables — so a cache hit also skips the
host→device coupling upload entirely (DESIGN.md §10).  In a multi-tenant
service the same instance arrives again and again — retries, parameter
sweeps, many clients submitting the same benchmark — so the service keys
every prepared representation by the *content* of the Q matrix and reuses
it across submissions.

The key is a SHA-256 over the canonical upper-triangular matrix bytes
(plus shape/dtype), paired with the resolved backend name — two backends
prepare different device representations of the same matrix, so they are
distinct entries.  Entries are :class:`~repro.backends.PreparedProblem`
handles; eviction is LRU by *use* (a hit refreshes recency).  The cache is
thread-safe: clients submit from arbitrary threads while the service
scheduler prepares on its own.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np
from scipy import sparse as sp

from repro.backends import PreparedProblem, resolve_backend

__all__ = ["CacheStats", "ProblemCache", "problem_key"]


def problem_key(model) -> str:
    """SHA-256 content hash of *model*'s canonical coupling/linear views.

    Two models built from different (but energy-equivalent) raw matrices
    hash equal exactly when their canonical symmetric couplings and
    linear terms agree — the invariant every layer below the solver
    consumes.  Works for dense and CSR-coupled models alike.
    """
    couplings = model.couplings
    if sp.issparse(couplings):  # SparseQUBOModel keeps couplings in CSR
        csr = couplings.tocsr()
        parts = (
            np.asarray(csr.indptr),
            np.asarray(csr.indices),
            np.ascontiguousarray(csr.data),
        )
        storage = "csr"
    else:
        parts = (np.ascontiguousarray(couplings),)
        storage = "dense"
    digest = hashlib.sha256()
    digest.update(f"{model.n}:{model.dtype.str}:{storage}".encode())
    digest.update(np.ascontiguousarray(model.linear).tobytes())
    for arr in parts:
        digest.update(arr.tobytes())
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Cumulative hit/miss/eviction counters of one :class:`ProblemCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


class ProblemCache:
    """LRU cache: (Q-matrix hash, backend name) → :class:`PreparedProblem`."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: OrderedDict[tuple[str, str], PreparedProblem] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def prepare(self, model, backend=None) -> PreparedProblem:
        """The prepared handle for *model*, building and caching on miss.

        *backend* accepts everything ``resolve_backend`` does; the key
        uses the *resolved* backend name, so ``None``/"auto" requests hit
        entries prepared under the same auto choice.
        """
        resolved = resolve_backend(backend, model)
        key = (problem_key(model), resolved.name)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.stats.hits += 1
                self._entries.move_to_end(key)
                return entry
        # preparation happens outside the lock (it can be expensive);
        # concurrent misses on the same key race benignly — last one in
        # wins and the handles are interchangeable
        prepared = PreparedProblem(model, resolved, resolved.prepare(model))
        with self._lock:
            self.stats.misses += 1
            self._entries[key] = prepared
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return prepared

    def contains(self, model, backend=None) -> bool:
        """True when a prepared handle is resident (does not touch stats)."""
        resolved = resolve_backend(backend, model)
        with self._lock:
            return (problem_key(model), resolved.name) in self._entries

    def clear(self) -> None:
        """Drop every entry (stats are preserved)."""
        with self._lock:
            self._entries.clear()
