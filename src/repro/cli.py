"""Command-line interface: solve benchmark files with any bundled solver.

Usage::

    python -m repro <file> [--format auto|qubo|gset|qaplib]
                           [--solver dabs|abs|sa|tabu|sbm|exact|mip]
                           [--time-limit S] [--rounds N] [--target E]
                           [--seed K] [--gpus G] [--blocks B]
                           [--backend auto|numpy-dense|numpy-sparse|numba|cuda]
                           [--engine round|async|async-process]
                           [--islands N] [--topology ring|all]
                           [--migration-period M] [--migration-k K]
                           [--transport queue|slab|socket]

    python -m repro serve [--gpus G] [--blocks B] [--max-queue Q]
                          [--islands N] ...

The file format is inferred from the extension by default (``.qubo``,
``.dat`` for QAPLIB, anything else is tried as Gset).  MaxCut/QAP files are
reduced to QUBO with the paper's constructions; QAP results are decoded
back to an assignment.

``repro serve`` starts the long-lived multi-tenant solve service instead:
JSON-lines requests on stdin, streamed JSON events on stdout (see
:mod:`repro.service.serve` for the wire protocol).
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from repro.backends import backend_names, validate_backend_name
from repro.engine import ENGINE_ENV_VAR, engine_names, validate_engine_name
from repro.baselines.exact import BranchAndBoundSolver, MipLikeSolver
from repro.baselines.sbm import SBMConfig, sbm_solve_qubo
from repro.baselines.simulated_annealing import SAConfig, simulated_annealing
from repro.baselines.tabu_search import TabuSearchConfig, tabu_search
from repro.core.qubo import QUBOModel
from repro.io.formats import load_instance
from repro.problems.maxcut import cut_value
from repro.resilience import chaos
from repro.problems.qap import decode_assignment
from repro.search.batch import BatchSearchConfig
from repro.solver.abs_solver import ABSSolver
from repro.solver.dabs import DABSConfig, DABSSolver

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Solve a QUBO/MaxCut/QAP benchmark file with DABS "
        "or one of the bundled baselines.",
        epilog='Run "repro serve --help" for the multi-tenant solve '
        "service (JSON-lines over stdin/stdout).",
    )
    parser.add_argument("file", help='instance file, or "serve"')
    parser.add_argument(
        "--format",
        choices=("auto", "qubo", "gset", "qaplib"),
        default="auto",
        help="input format (default: by extension)",
    )
    parser.add_argument(
        "--solver",
        choices=("dabs", "abs", "sa", "tabu", "sbm", "exact", "mip"),
        default="dabs",
    )
    parser.add_argument("--time-limit", type=float, default=None, metavar="S")
    parser.add_argument("--rounds", type=int, default=None, metavar="N")
    parser.add_argument("--target", type=int, default=None, metavar="E")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--gpus", type=int, default=2, help="virtual GPUs")
    parser.add_argument("--blocks", type=int, default=8, help="blocks per GPU")
    parser.add_argument(
        "--backend",
        choices=("auto",) + backend_names(),
        default=None,
        help="compute backend for the dabs/abs flip kernels; other solvers "
        "ignore it (default: the REPRO_BACKEND env var if set, else auto — "
        "chosen by coupling density)",
    )
    parser.add_argument(
        "--engine",
        choices=engine_names(),
        default=None,
        help="execution engine for dabs/abs: the round-synchronous "
        "scheduler, the barrier-free async engine (thread workers), or "
        "async over one process per virtual GPU; other solvers ignore it "
        "(default: the REPRO_ENGINE env var if set, else round)",
    )
    parser.add_argument(
        "--batch-flip-factor", type=float, default=4.0, metavar="B",
        help="batch search flip factor b",
    )
    parser.add_argument(
        "--islands", type=int, default=1, metavar="N",
        help="federation islands for dabs/abs: N > 1 shards the solve "
        "over N processes (each a full fleet of --gpus devices) with "
        "periodic elite migration; other solvers ignore it (default: 1, "
        "solve in-process)",
    )
    parser.add_argument(
        "--topology", choices=("ring", "all"), default="ring",
        help="island migration topology (default: ring)",
    )
    parser.add_argument(
        "--migration-period", type=int, default=16, metavar="M",
        help="launches per island between elite migrations; 0 disables "
        "migration (default: 16)",
    )
    parser.add_argument(
        "--migration-k", type=int, default=4, metavar="K",
        help="elites each island publishes per migration (default: 4)",
    )
    parser.add_argument(
        "--transport", choices=("queue", "slab", "socket"), default="queue",
        help="inter-island migration transport (default: queue)",
    )
    return parser


def _load(args) -> tuple[QUBOModel, dict]:
    """Read the instance; returns (model, context for decoding)."""
    return load_instance(args.file, args.format)


def _solve(model: QUBOModel, args) -> tuple[np.ndarray, int, str]:
    """Dispatch to the selected solver; returns (vector, energy, detail)."""
    if args.solver in ("dabs", "abs"):
        config = DABSConfig(
            num_gpus=args.gpus,
            blocks_per_gpu=args.blocks,
            pool_capacity=20,
            batch=BatchSearchConfig(batch_flip_factor=args.batch_flip_factor),
            backend=args.backend,
            engine=args.engine,
        )
        cls = DABSSolver if args.solver == "dabs" else ABSSolver
        kwargs = {}
        if args.target is not None:
            kwargs["target_energy"] = args.target
        if args.time_limit is not None:
            kwargs["time_limit"] = args.time_limit
        if args.rounds is not None:
            kwargs["max_rounds"] = args.rounds
        if not kwargs:
            kwargs["max_rounds"] = 20
        if args.islands > 1:
            from repro.federation import Federation

            period = args.migration_period if args.migration_period > 0 else None
            with Federation(
                args.islands,
                topology=args.topology,
                transport=args.transport,
                migration_period=period,
                migration_k=args.migration_k,
                default_config=config,
                seed=args.seed,
            ) as federation:
                result = federation.submit(
                    model, solver_cls=cls, seed=args.seed, **kwargs
                ).result()
            detail = (
                f"{result.summary()} "
                f"[{args.islands} islands, {args.topology} topology]"
            )
            return result.best_vector, result.best_energy, detail
        solver = cls(model, config, seed=args.seed)
        result = solver.solve(**kwargs)
        return result.best_vector, result.best_energy, result.summary()
    if args.solver == "sa":
        result = simulated_annealing(model, SAConfig(sweeps=60), seed=args.seed)
        return result.best_vector, result.best_energy, "simulated annealing"
    if args.solver == "tabu":
        result = tabu_search(
            model, TabuSearchConfig(iterations=40 * model.n), seed=args.seed
        )
        return result.best_vector, result.best_energy, "tabu search"
    if args.solver == "sbm":
        vector, energy = sbm_solve_qubo(
            model, SBMConfig(steps=1200, num_replicas=32), seed=args.seed
        )
        return vector, energy, "discrete simulated bifurcation"
    if args.solver == "exact":
        result = BranchAndBoundSolver().solve(model, time_limit=args.time_limit)
        status = "proved optimal" if result.proved_optimal else "NOT proved (budget)"
        return result.best_vector, result.best_energy, status
    result = MipLikeSolver(
        time_limit=args.time_limit or 5.0, seed=args.seed
    ).solve(model)
    status = "proved optimal" if result.proved_optimal else "incumbent at limit"
    return result.best_vector, result.best_energy, status


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:  # pragma: no cover - process entry
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        from repro.service import serve_main

        return serve_main(argv[1:])
    args = build_parser().parse_args(argv)
    try:
        model, context = _load(args)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    env_backend = os.environ.get("REPRO_BACKEND", "").strip()
    if args.solver in ("dabs", "abs") and args.backend is None and env_backend:
        try:
            validate_backend_name(env_backend)
        except ValueError as exc:
            print(f"error: REPRO_BACKEND: {exc}", file=sys.stderr)
            return 2
    env_engine = os.environ.get(ENGINE_ENV_VAR, "").strip()
    if args.solver in ("dabs", "abs") and args.engine is None and env_engine:
        try:
            validate_engine_name(env_engine)
        except ValueError as exc:
            print(f"error: {ENGINE_ENV_VAR}: {exc}", file=sys.stderr)
            return 2
    try:
        chaos.config_from_env(os.environ)
    except ValueError as exc:
        print(f"error: {chaos.ENV_SPEC}: {exc}", file=sys.stderr)
        return 2
    print(f"instance: {model.name} ({model.n} variables, "
          f"{model.num_interactions} interactions)")
    vector, energy, detail = _solve(model, args)
    print(f"solver  : {args.solver} — {detail}")
    print(f"energy  : {energy}")
    if "adjacency" in context:
        print(f"cut     : {cut_value(context['adjacency'], vector)}")
    if "qap" in context:
        inst = context["qap"]
        perm = decode_assignment(vector, inst.n)
        if perm is None:
            print("decode  : infeasible one-hot vector")
        else:
            print(f"decode  : assignment {perm.tolist()} cost={inst.cost(perm)}")
    print(f"vector  : {''.join(map(str, vector))}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
