"""QUBO model: energy definition and canonical matrix forms.

A QUBO model (paper §I.A, Eq. 2) is a weighted graph stored as a square matrix
``W``; the energy of a binary vector ``X`` is

    E(X) = sum_{(i,j)} W[i,j] * x_i * x_j

with diagonal entries acting as linear terms (``x_i^2 = x_i``).  Arbitrary
square input is folded into a canonical **upper-triangular** matrix ``U``
(``U[i,j] = W[i,j] + W[j,i]`` for ``i < j``), which leaves the energy function
unchanged.  Two derived views are precomputed once because the incremental
search engine (:mod:`repro.core.delta`) consumes them on every flip:

* ``couplings`` — symmetric off-diagonal matrix ``S`` (zero diagonal),
* ``linear`` — the diagonal of ``U``.

All benchmark generators in this repository emit integer weights, so models
default to exact ``int64`` arithmetic; float input is preserved as ``float64``.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_bit_vector, check_square_matrix

__all__ = ["QUBOModel", "brute_force"]

#: Enumerating more than this many bits is refused by :func:`brute_force`.
_BRUTE_FORCE_MAX_BITS = 24


class QUBOModel:
    """A dense QUBO model ``W`` with exact energy evaluation.

    Parameters
    ----------
    matrix:
        Square weight matrix.  Any (possibly asymmetric) matrix is accepted
        and folded into upper-triangular canonical form.
    name:
        Optional human-readable instance name (used in reports).
    """

    __slots__ = ("_upper", "_couplings", "_linear", "name")

    def __init__(self, matrix, name: str = "") -> None:
        arr = check_square_matrix(matrix, "matrix")
        if np.issubdtype(arr.dtype, np.floating):
            if np.allclose(arr, np.rint(arr)):
                arr = np.rint(arr).astype(np.int64)
            else:
                arr = arr.astype(np.float64)
        else:
            arr = arr.astype(np.int64)
        upper = np.triu(arr) + np.tril(arr, -1).T
        self._upper = np.ascontiguousarray(upper)
        sym = upper + upper.T
        np.fill_diagonal(sym, 0)
        self._couplings = np.ascontiguousarray(sym)
        self._linear = np.ascontiguousarray(np.diagonal(upper).copy())
        self.name = name or f"qubo-{self.n}"

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of binary variables."""
        return self._upper.shape[0]

    @property
    def dtype(self) -> np.dtype:
        """Arithmetic dtype (``int64`` for integer models)."""
        return self._upper.dtype

    @property
    def upper(self) -> np.ndarray:
        """Canonical upper-triangular weight matrix ``U`` (read-only view)."""
        v = self._upper.view()
        v.flags.writeable = False
        return v

    @property
    def couplings(self) -> np.ndarray:
        """Symmetric off-diagonal couplings ``S = U + U.T`` with zero diagonal."""
        v = self._couplings.view()
        v.flags.writeable = False
        return v

    @property
    def linear(self) -> np.ndarray:
        """Linear terms (the diagonal of ``U``)."""
        v = self._linear.view()
        v.flags.writeable = False
        return v

    @property
    def num_interactions(self) -> int:
        """Number of non-zero off-diagonal couplings (graph edges)."""
        return int(np.count_nonzero(np.triu(self._couplings, 1)))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, n: int, terms: dict, name: str = "") -> "QUBOModel":
        """Build a model from ``{(i, j): weight}``; ``(i, i)`` are linear terms.

        Duplicate keys ``(i, j)`` and ``(j, i)`` accumulate, matching the sum
        in Eq. (2).
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        mat = np.zeros((n, n), dtype=np.float64)
        for (i, j), w in terms.items():
            if not (0 <= i < n and 0 <= j < n):
                raise ValueError(f"index ({i}, {j}) out of range for n={n}")
            mat[i, j] += w
        return cls(mat, name=name)

    def to_dict(self) -> dict:
        """Return the canonical upper-triangular terms as ``{(i, j): w}``."""
        ii, jj = np.nonzero(self._upper)
        return {
            (int(i), int(j)): self._upper[i, j].item() for i, j in zip(ii, jj)
        }

    # ------------------------------------------------------------------
    # Energy evaluation
    # ------------------------------------------------------------------
    def energy(self, x) -> int | float:
        """Exact energy ``E(X)`` of one solution vector (Eq. 2)."""
        x = check_bit_vector(x, self.n)
        xi = x.astype(self._upper.dtype)
        return (xi @ self._upper @ xi).item()

    def energies(self, xs) -> np.ndarray:
        """Energies of a batch of solution vectors, shape ``(B, n) -> (B,)``."""
        xs = np.asarray(xs)
        if xs.ndim != 2 or xs.shape[1] != self.n:
            raise ValueError(f"expected shape (B, {self.n}), got {xs.shape}")
        xi = xs.astype(self._upper.dtype)
        return np.einsum("bi,ij,bj->b", xi, self._upper, xi)

    def delta_vector(self, x) -> np.ndarray:
        """All one-bit flip gains ``Δ_k(X) = E(f_k(X)) − E(X)`` (Eq. 3).

        Computed non-incrementally in O(n²); the incremental engine in
        :mod:`repro.core.delta` maintains the same vector in O(n) per flip.
        """
        x = check_bit_vector(x, self.n)
        xi = x.astype(self._upper.dtype)
        contrib = self._couplings @ xi + self._linear
        sign = 1 - 2 * xi  # σ of the flipped value
        return sign * contrib

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QUBOModel(name={self.name!r}, n={self.n}, "
            f"interactions={self.num_interactions}, dtype={self.dtype})"
        )


def brute_force(model: QUBOModel, chunk_bits: int = 16):
    """Exhaustively find ``(best_x, best_energy)`` of a small model.

    Enumerates all ``2^n`` vectors in vectorized chunks; refuses models with
    more than 24 bits.  Intended for validating heuristic solvers in tests.
    """
    n = model.n
    if n > _BRUTE_FORCE_MAX_BITS:
        raise ValueError(
            f"brute_force supports n <= {_BRUTE_FORCE_MAX_BITS}, got {n}"
        )
    total = 1 << n
    step = 1 << min(chunk_bits, n)
    bit_cols = np.arange(n, dtype=np.uint64)
    best_energy = None
    best_code = 0
    for start in range(0, total, step):
        codes = np.arange(start, min(start + step, total), dtype=np.uint64)
        xs = ((codes[:, None] >> bit_cols[None, :]) & 1).astype(np.uint8)
        energies = model.energies(xs)
        k = int(np.argmin(energies))
        if best_energy is None or energies[k] < best_energy:
            best_energy = energies[k].item()
            best_code = int(codes[k])
    best_x = ((best_code >> np.arange(n)) & 1).astype(np.uint8)
    return best_x, best_energy
