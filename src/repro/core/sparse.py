"""Sparse QUBO models: the memory path for annealer-scale instances.

The paper's QASP instances live on the Pegasus working graph — 5627 bits
but only ~40k couplers, i.e. 0.25 % density.  A dense coupling matrix at
that size costs ~254 MB; :class:`SparseQUBOModel` stores the couplings in
CSR instead and plugs into the *same* solver stack: it exposes the exact
read interface (`n`, `couplings`, `linear`, `energy`, `energies`,
`delta_vector`) consumed by :class:`~repro.core.delta.BatchDeltaState`,
which switches to CSR row-gather updates automatically (O(degree) per
neighbour instead of O(n) per flip — the sparse analogue of the paper's
companion work [9] on sparse QUBO).

Integer weights stay in exact int64 arithmetic, so sparse and dense runs of
the same seed are bit-identical (asserted in tests).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as sp

from repro.core.ising import IsingModel
from repro.core.qubo import QUBOModel
from repro.utils.validation import check_bit_vector

__all__ = ["SparseQUBOModel", "sparse_ising_to_qubo"]


class SparseQUBOModel:
    """A QUBO model with CSR couplings (drop-in for :class:`QUBOModel`)."""

    __slots__ = ("_upper", "_couplings", "_linear", "name")

    def __init__(self, n: int, terms: dict, name: str = "") -> None:
        """Build from ``{(i, j): weight}``; ``(i, i)`` are linear terms.

        Mirror entries ``(i, j)``/``(j, i)`` accumulate, as in
        :meth:`QUBOModel.from_dict`.
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        linear = np.zeros(n, dtype=np.int64)
        rows, cols, vals = [], [], []
        for (i, j), w in terms.items():
            if not (0 <= i < n and 0 <= j < n):
                raise ValueError(f"index ({i}, {j}) out of range for n={n}")
            w = int(w)
            if i == j:
                linear[i] += w
            else:
                rows.append(min(i, j))
                cols.append(max(i, j))
                vals.append(w)
        upper = sp.csr_array(
            (np.array(vals, dtype=np.int64), (rows, cols)),
            shape=(n, n),
            dtype=np.int64,
        )
        upper.sum_duplicates()
        upper.eliminate_zeros()
        self._upper = upper
        couplings = (upper + upper.T).tocsr()
        couplings.eliminate_zeros()
        self._couplings = couplings
        self._linear = linear
        self.name = name or f"sparse-qubo-{n}"

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of binary variables."""
        return self._linear.shape[0]

    @property
    def dtype(self) -> np.dtype:
        """Arithmetic dtype (always int64 for sparse models)."""
        return np.dtype(np.int64)

    @property
    def couplings(self) -> sp.csr_array:
        """Symmetric off-diagonal couplings as CSR."""
        return self._couplings

    @property
    def linear(self) -> np.ndarray:
        """Linear terms."""
        v = self._linear.view()
        v.flags.writeable = False
        return v

    @property
    def num_interactions(self) -> int:
        """Number of non-zero off-diagonal couplings (graph edges)."""
        return int(self._upper.nnz)

    @property
    def density(self) -> float:
        """Fraction of possible couplings present."""
        possible = self.n * (self.n - 1) // 2
        return self.num_interactions / possible if possible else 0.0

    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, model: QUBOModel) -> "SparseQUBOModel":
        """Convert a dense model (must have integer weights)."""
        if not np.issubdtype(model.dtype, np.integer):
            raise ValueError("sparse models require integer weights")
        out = cls.__new__(cls)
        upper = sp.csr_array(sp.triu(np.asarray(model.upper), k=1, format="csr"))
        out._upper = upper.astype(np.int64)
        couplings = (out._upper + out._upper.T).tocsr()
        couplings.eliminate_zeros()
        out._couplings = couplings
        out._linear = np.asarray(model.linear, dtype=np.int64).copy()
        out.name = model.name
        return out

    def to_dense(self) -> QUBOModel:
        """Materialize the equivalent dense model."""
        mat = self._upper.toarray() + np.diag(self._linear)
        return QUBOModel(mat, name=self.name)

    # ------------------------------------------------------------------
    def energy(self, x) -> int:
        """Exact energy of one solution vector."""
        x = check_bit_vector(x, self.n)
        xi = x.astype(np.int64)
        quad = xi @ (self._upper @ xi)
        return int(quad + self._linear @ xi)

    def energies(self, xs) -> np.ndarray:
        """Energies of a ``(B, n)`` batch."""
        xs = np.asarray(xs)
        if xs.ndim != 2 or xs.shape[1] != self.n:
            raise ValueError(f"expected shape (B, {self.n}), got {xs.shape}")
        xi = xs.astype(np.int64)
        quad = ((self._upper @ xi.T).T * xi).sum(axis=1)
        return quad + xi @ self._linear

    def delta_vector(self, x) -> np.ndarray:
        """All one-bit flip gains Δ_k(X) (Eq. 3), computed sparsely."""
        x = check_bit_vector(x, self.n)
        xi = x.astype(np.int64)
        contrib = self._couplings @ xi + self._linear
        return (1 - 2 * xi) * contrib

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SparseQUBOModel(name={self.name!r}, n={self.n}, "
            f"interactions={self.num_interactions}, density={self.density:.4f})"
        )


def sparse_ising_to_qubo(model: IsingModel) -> tuple[SparseQUBOModel, int]:
    """Sparse counterpart of :func:`repro.core.ising.ising_to_qubo`.

    Returns ``(qubo, offset)`` with ``E(X) = H(S) + offset``; weights follow
    the identical construction (``W_ij = 4J_ij`` etc.) so energies agree
    exactly with the dense conversion.
    """
    j = np.asarray(model.interactions)
    h = np.asarray(model.biases)
    n = model.n
    terms: dict[tuple[int, int], int] = {}
    ii, jj = np.nonzero(j)
    for a, b in zip(ii.tolist(), jj.tolist()):
        terms[(a, b)] = 4 * int(j[a, b])
    row_strength = j.sum(axis=1) + j.sum(axis=0)
    for i in range(n):
        diag = 2 * int(h[i]) - 2 * int(row_strength[i])
        if diag:
            terms[(i, i)] = diag
    offset = int(h.sum() - j.sum())
    return SparseQUBOModel(n, terms, name=f"{model.name}-as-sparse-qubo"), offset
