"""Packets: the host ↔ device communication protocol (paper §III.C, Table I).

A packet carries four fields: a solution vector, its energy (void on the way
to the device), the main search algorithm to run, and the genetic operation
that produced the target vector.  The device overwrites the vector/energy
fields with the best solution found and returns the packet unchanged in the
algorithm/operation fields, which is what lets the host attribute successes
to strategies (the adaptive mechanism of §IV.A).

Two representations:

* :class:`PacketBatch` — structure-of-arrays buffer for a whole kernel
  launch, and since the columnar host refactor (DESIGN.md §5) the *only*
  interchange type on the round path: generation builds batches straight
  from ``(B, n)`` target matrices (:meth:`PacketBatch.void`) and collection
  folds result batches into pools column-wise.  Transfers between host and
  virtual GPU move only these contiguous arrays (the buffer-protocol idiom
  of HPC message passing), never Python objects.
* :class:`Packet` — host-side dataclass view of one row, kept as a thin
  compatibility surface for tests, examples and scalar reference paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np

__all__ = ["MainAlgorithm", "GeneticOp", "Packet", "PacketBatch", "VOID_ENERGY"]

#: Sentinel stored in the energy field of host→device packets ("void").
VOID_ENERGY = np.iinfo(np.int64).max


class MainAlgorithm(IntEnum):
    """The five main search algorithms of §III.A (batch-search phase)."""

    MAXMIN = 0
    CYCLICMIN = 1
    RANDOMMIN = 2
    POSITIVEMIN = 3
    TWONEIGHBOR = 4


class GeneticOp(IntEnum):
    """The eight genetic operations of §IV.A (plus inter-pool Xrossover)."""

    RANDOM = 0
    BEST = 1
    MUTATION = 2
    CROSSOVER = 3
    XROSSOVER = 4
    ZERO = 5
    ONE = 6
    INTERVALZERO = 7


@dataclass
class Packet:
    """Host-side view of one packet (Table I).

    ``energy`` is :data:`VOID_ENERGY` on host→device packets because the
    host never computes energies (§III.C).
    """

    vector: np.ndarray
    energy: int
    algorithm: MainAlgorithm
    operation: GeneticOp

    def is_void(self) -> bool:
        """True for host→device packets whose energy field is unset."""
        return self.energy == VOID_ENERGY

    def copy(self) -> "Packet":
        """Deep copy (the vector buffer is duplicated)."""
        return Packet(
            self.vector.copy(), self.energy, self.algorithm, self.operation
        )


class PacketBatch:
    """Structure-of-arrays buffer holding ``B`` packets for one launch."""

    __slots__ = ("vectors", "energies", "algorithms", "operations")

    def __init__(
        self,
        vectors: np.ndarray,
        energies: np.ndarray,
        algorithms: np.ndarray,
        operations: np.ndarray,
    ) -> None:
        vectors = np.ascontiguousarray(vectors, dtype=np.uint8)
        if vectors.ndim != 2:
            raise ValueError(f"vectors must be (B, n), got {vectors.shape}")
        b = vectors.shape[0]
        energies = np.ascontiguousarray(energies, dtype=np.int64)
        algorithms = np.ascontiguousarray(algorithms, dtype=np.uint8)
        operations = np.ascontiguousarray(operations, dtype=np.uint8)
        for name, arr in (
            ("energies", energies),
            ("algorithms", algorithms),
            ("operations", operations),
        ):
            if arr.shape != (b,):
                raise ValueError(f"{name} must have shape ({b},), got {arr.shape}")
        self.vectors = vectors
        self.energies = energies
        self.algorithms = algorithms
        self.operations = operations

    def __len__(self) -> int:
        return self.vectors.shape[0]

    @property
    def n(self) -> int:
        """Solution vector length."""
        return self.vectors.shape[1]

    @classmethod
    def void(
        cls,
        vectors: np.ndarray,
        algorithms: np.ndarray,
        operations: np.ndarray,
    ) -> "PacketBatch":
        """Host→device batch from columnar fields; energies set to void.

        The columnar generation path builds batches directly from the
        target matrix and strategy columns — no intermediate
        :class:`Packet` objects (the host never computes energies, §III.C).
        """
        energies = np.full(
            np.asarray(vectors).shape[0], VOID_ENERGY, dtype=np.int64
        )
        return cls(vectors, energies, algorithms, operations)

    @classmethod
    def from_packets(cls, packets) -> "PacketBatch":
        """Pack host-side :class:`Packet` objects into one buffer."""
        packets = list(packets)
        if not packets:
            raise ValueError("cannot build an empty PacketBatch")
        vectors = np.stack([p.vector for p in packets]).astype(np.uint8)
        energies = np.array([p.energy for p in packets], dtype=np.int64)
        algorithms = np.array([int(p.algorithm) for p in packets], dtype=np.uint8)
        operations = np.array([int(p.operation) for p in packets], dtype=np.uint8)
        return cls(vectors, energies, algorithms, operations)

    def to_packets(self) -> list[Packet]:
        """Unpack into host-side :class:`Packet` views (vectors are copies)."""
        return [
            Packet(
                self.vectors[i].copy(),
                int(self.energies[i]),
                MainAlgorithm(int(self.algorithms[i])),
                GeneticOp(int(self.operations[i])),
            )
            for i in range(len(self))
        ]

    def group_by_algorithm(self) -> dict[MainAlgorithm, np.ndarray]:
        """Row indices grouped by main search algorithm.

        The virtual GPU launches one lockstep sub-batch per algorithm, since
        lanes running different algorithms cannot share a flip schedule.
        """
        groups: dict[MainAlgorithm, np.ndarray] = {}
        for alg in np.unique(self.algorithms):
            groups[MainAlgorithm(int(alg))] = np.flatnonzero(
                self.algorithms == alg
            )
        return groups
