"""Packets: the host ↔ device communication protocol (paper §III.C, Table I).

A packet carries four fields: a solution vector, its energy (void on the way
to the device), the main search algorithm to run, and the genetic operation
that produced the target vector.  The device overwrites the vector/energy
fields with the best solution found and returns the packet unchanged in the
algorithm/operation fields, which is what lets the host attribute successes
to strategies (the adaptive mechanism of §IV.A).

Two representations:

* :class:`PacketBatch` — structure-of-arrays buffer for a whole kernel
  launch, and since the columnar host refactor (DESIGN.md §5) the *only*
  interchange type on the round path: generation builds batches straight
  from ``(B, n)`` target matrices (:meth:`PacketBatch.void`) and collection
  folds result batches into pools column-wise.  Transfers between host and
  virtual GPU move only these contiguous arrays (the buffer-protocol idiom
  of HPC message passing), never Python objects.
* :class:`Packet` — host-side dataclass view of one row, kept as a thin
  compatibility surface for tests, examples and scalar reference paths.
* :class:`SharedBatchSlab` — the same SoA columns placed in one anonymous
  shared ``mmap`` so a forked device-worker process and the host read and
  write the *same* physical pages (DESIGN.md §7).  Crossing the process
  boundary moves only a tiny ``(seq, slot)`` message through a queue —
  no column is ever pickled.
"""

from __future__ import annotations

import mmap
from dataclasses import dataclass
from enum import IntEnum

import numpy as np

__all__ = [
    "MainAlgorithm",
    "GeneticOp",
    "Packet",
    "PacketBatch",
    "SharedBatchSlab",
    "VOID_ENERGY",
]

#: Sentinel stored in the energy field of host→device packets ("void").
VOID_ENERGY = np.iinfo(np.int64).max


class MainAlgorithm(IntEnum):
    """The five main search algorithms of §III.A (batch-search phase)."""

    MAXMIN = 0
    CYCLICMIN = 1
    RANDOMMIN = 2
    POSITIVEMIN = 3
    TWONEIGHBOR = 4


class GeneticOp(IntEnum):
    """The eight genetic operations of §IV.A (plus inter-pool Xrossover)."""

    RANDOM = 0
    BEST = 1
    MUTATION = 2
    CROSSOVER = 3
    XROSSOVER = 4
    ZERO = 5
    ONE = 6
    INTERVALZERO = 7


@dataclass
class Packet:
    """Host-side view of one packet (Table I).

    ``energy`` is :data:`VOID_ENERGY` on host→device packets because the
    host never computes energies (§III.C).
    """

    vector: np.ndarray
    energy: int
    algorithm: MainAlgorithm
    operation: GeneticOp

    def is_void(self) -> bool:
        """True for host→device packets whose energy field is unset."""
        return self.energy == VOID_ENERGY

    def copy(self) -> "Packet":
        """Deep copy (the vector buffer is duplicated)."""
        return Packet(
            self.vector.copy(), self.energy, self.algorithm, self.operation
        )


class PacketBatch:
    """Structure-of-arrays buffer holding ``B`` packets for one launch."""

    __slots__ = ("vectors", "energies", "algorithms", "operations")

    def __init__(
        self,
        vectors: np.ndarray,
        energies: np.ndarray,
        algorithms: np.ndarray,
        operations: np.ndarray,
    ) -> None:
        vectors = np.ascontiguousarray(vectors, dtype=np.uint8)
        if vectors.ndim != 2:
            raise ValueError(f"vectors must be (B, n), got {vectors.shape}")
        b = vectors.shape[0]
        energies = np.ascontiguousarray(energies, dtype=np.int64)
        algorithms = np.ascontiguousarray(algorithms, dtype=np.uint8)
        operations = np.ascontiguousarray(operations, dtype=np.uint8)
        for name, arr in (
            ("energies", energies),
            ("algorithms", algorithms),
            ("operations", operations),
        ):
            if arr.shape != (b,):
                raise ValueError(f"{name} must have shape ({b},), got {arr.shape}")
        self.vectors = vectors
        self.energies = energies
        self.algorithms = algorithms
        self.operations = operations

    def __len__(self) -> int:
        return self.vectors.shape[0]

    @property
    def n(self) -> int:
        """Solution vector length."""
        return self.vectors.shape[1]

    @classmethod
    def void(
        cls,
        vectors: np.ndarray,
        algorithms: np.ndarray,
        operations: np.ndarray,
    ) -> "PacketBatch":
        """Host→device batch from columnar fields; energies set to void.

        The columnar generation path builds batches directly from the
        target matrix and strategy columns — no intermediate
        :class:`Packet` objects (the host never computes energies, §III.C).
        """
        energies = np.full(
            np.asarray(vectors).shape[0], VOID_ENERGY, dtype=np.int64
        )
        return cls(vectors, energies, algorithms, operations)

    @classmethod
    def from_packets(cls, packets) -> "PacketBatch":
        """Pack host-side :class:`Packet` objects into one buffer."""
        packets = list(packets)
        if not packets:
            raise ValueError("cannot build an empty PacketBatch")
        vectors = np.stack([p.vector for p in packets]).astype(np.uint8)
        energies = np.array([p.energy for p in packets], dtype=np.int64)
        algorithms = np.array([int(p.algorithm) for p in packets], dtype=np.uint8)
        operations = np.array([int(p.operation) for p in packets], dtype=np.uint8)
        return cls(vectors, energies, algorithms, operations)

    def to_packets(self) -> list[Packet]:
        """Unpack into host-side :class:`Packet` views (vectors are copies)."""
        return [
            Packet(
                self.vectors[i].copy(),
                int(self.energies[i]),
                MainAlgorithm(int(self.algorithms[i])),
                GeneticOp(int(self.operations[i])),
            )
            for i in range(len(self))
        ]

    def group_by_algorithm(self) -> dict[MainAlgorithm, np.ndarray]:
        """Row indices grouped by main search algorithm.

        The virtual GPU launches one lockstep sub-batch per algorithm, since
        lanes running different algorithms cannot share a flip schedule.
        """
        groups: dict[MainAlgorithm, np.ndarray] = {}
        for alg in np.unique(self.algorithms):
            groups[MainAlgorithm(int(alg))] = np.flatnonzero(
                self.algorithms == alg
            )
        return groups


class SharedBatchSlab:
    """One launch slot of :class:`PacketBatch` columns in shared memory.

    The columns live in a single anonymous ``MAP_SHARED`` mmap, so a child
    process forked *after* allocation sees the very same pages — host and
    device worker exchange whole batches by writing columns in place and
    passing only ``(seq, slot)`` through a queue (the pickle-free process
    boundary of DESIGN.md §7).  An extra ``flips`` int64 column rides along
    so the device can report per-lane flip counts without a message payload.

    Layout (one contiguous block, 8-byte fields first so the int64 views
    stay aligned)::

        energies  B × int64
        flips     B × int64
        vectors   B × n × uint8
        algorithms B × uint8
        operations B × uint8

    Anonymous mmaps need no named-segment cleanup: the mapping disappears when the last
    reference (parent or forked child) drops, so worker crashes can never
    leak ``/dev/shm`` segments the way named shared memory can.
    """

    __slots__ = (
        "batch_size",
        "n",
        "_mmap",
        "vectors",
        "energies",
        "algorithms",
        "operations",
        "flips",
    )

    def __init__(self, batch_size: int, n: int) -> None:
        if batch_size < 1 or n < 1:
            raise ValueError("batch_size and n must be >= 1")
        self.batch_size = batch_size
        self.n = n
        size = 16 * batch_size + batch_size * n + 2 * batch_size
        self._mmap = mmap.mmap(-1, size)
        buf = memoryview(self._mmap)
        off = 0
        self.energies = np.frombuffer(buf, np.int64, batch_size, offset=off)
        off += 8 * batch_size
        self.flips = np.frombuffer(buf, np.int64, batch_size, offset=off)
        off += 8 * batch_size
        self.vectors = np.frombuffer(
            buf, np.uint8, batch_size * n, offset=off
        ).reshape(batch_size, n)
        off += batch_size * n
        self.algorithms = np.frombuffer(buf, np.uint8, batch_size, offset=off)
        off += batch_size
        self.operations = np.frombuffer(buf, np.uint8, batch_size, offset=off)

    def store(self, batch: PacketBatch) -> None:
        """Copy *batch*'s columns into the shared pages (host → device)."""
        if len(batch) != self.batch_size or batch.n != self.n:
            raise ValueError(
                f"batch is ({len(batch)}, {batch.n}), "
                f"slab is ({self.batch_size}, {self.n})"
            )
        self.vectors[:] = batch.vectors
        self.energies[:] = batch.energies
        self.algorithms[:] = batch.algorithms
        self.operations[:] = batch.operations

    def store_result(self, batch: PacketBatch, flips: np.ndarray) -> None:
        """Copy a launch result plus its flip counts in (device → host)."""
        self.store(batch)
        self.flips[:] = flips

    def batch(self) -> PacketBatch:
        """A zero-copy :class:`PacketBatch` aliasing the shared columns."""
        return PacketBatch(
            self.vectors, self.energies, self.algorithms, self.operations
        )

    def snapshot(self) -> tuple[PacketBatch, np.ndarray]:
        """Private copies of the result columns (safe after slot reuse)."""
        return (
            PacketBatch(
                self.vectors.copy(),
                self.energies.copy(),
                self.algorithms.copy(),
                self.operations.copy(),
            ),
            self.flips.copy(),
        )
