"""Core substrates: models, incremental search engine, RNG, packets."""

from repro.core.delta import BatchDeltaState, DeltaState
from repro.core.ising import (
    IsingModel,
    bits_to_spins,
    ising_to_qubo,
    qubo_to_ising,
    spins_to_bits,
)
from repro.core.packet import (
    VOID_ENERGY,
    GeneticOp,
    MainAlgorithm,
    Packet,
    PacketBatch,
)
from repro.core.qubo import QUBOModel, brute_force
from repro.core.rng import XorShift64Star, host_generator, spawn_device_seeds
from repro.core.sparse import SparseQUBOModel, sparse_ising_to_qubo

__all__ = [
    "BatchDeltaState",
    "DeltaState",
    "GeneticOp",
    "IsingModel",
    "MainAlgorithm",
    "Packet",
    "PacketBatch",
    "QUBOModel",
    "SparseQUBOModel",
    "VOID_ENERGY",
    "XorShift64Star",
    "sparse_ising_to_qubo",
    "bits_to_spins",
    "brute_force",
    "host_generator",
    "ising_to_qubo",
    "qubo_to_ising",
    "spawn_device_seeds",
    "spins_to_bits",
]
