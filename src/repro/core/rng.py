"""Random number generation matching the paper's two-level scheme (§V).

The host uses the Mersenne twister to generate one 64-bit seed per device
thread; each device thread then advances a cheap xorshift generator locally.
We reproduce this exactly:

* :func:`host_generator` — an MT19937-backed NumPy ``Generator`` for all
  host-side decisions (genetic operations, adaptive selection).
* :class:`XorShift64Star` — a vectorized lane-parallel xorshift64* generator;
  one lane per virtual device thread, all lanes advanced by single fused
  uint64 ufunc expressions (no Python-level per-lane loop).

The device-side search hot path consumes lanes through three primitives
(see DESIGN.md §6) designed so the fused phase kernels never pay a
``(B, n)`` float conversion:

* :meth:`XorShift64Star.next_keys` — advance every lane, return the 53-bit
  scrambled outputs as **integer keys**.  Because ``key ↦ key · 2⁻⁵³`` is
  strictly monotonic and injective, any argmax/comparison over the keys is
  bit-identical to the same operation over the floats they would convert to.
* :meth:`XorShift64Star.bernoulli` — lane-wise coin flips by integer
  threshold: ``key < ⌈p · 2⁵³⌉``, provably equal to ``random() < p``.
* :meth:`XorShift64Star.row_random` — one float draw per **row** advancing
  only lane column 0 (the block-level "thread 0 draws" idiom); used for
  per-row scalar decisions like MaxMin's threshold.

Determinism: a full solver run is a pure function of (model, config, seed).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["host_generator", "spawn_device_seeds", "XorShift64Star"]

_MULTIPLIER = np.uint64(0x2545F4914F6CDD1D)
_DOUBLE_SCALE = float(2.0**-53)
#: 2⁵³ as a float — exact; used to turn probabilities into integer thresholds
_KEY_SPAN = float(2.0**53)

_U11 = np.uint64(11)
_U12 = np.uint64(12)
_U25 = np.uint64(25)
_U27 = np.uint64(27)


def host_generator(seed: int | None) -> np.random.Generator:
    """Mersenne-twister host RNG, as used on the host CPU in the paper."""
    return np.random.Generator(np.random.MT19937(seed))


def spawn_device_seeds(rng: np.random.Generator, shape) -> np.ndarray:
    """Draw non-zero 64-bit xorshift seeds from the host generator."""
    seeds = rng.integers(1, np.iinfo(np.uint64).max, size=shape, dtype=np.uint64)
    return seeds


def bernoulli_threshold(p: float) -> int:
    """Integer key threshold equivalent to ``random() < p``.

    ``random()`` is ``key · 2⁻⁵³`` with ``key`` an exact 53-bit integer, so
    ``random() < p  ⟺  key < p · 2⁵³  ⟺  key < ⌈p · 2⁵³⌉`` (the float
    product is an exact power-of-two scaling; the ceiling is exact below
    2⁶³).  Shared by the reference :meth:`XorShift64Star.bernoulli` and the
    fused kernels' per-iteration threshold tables.
    """
    return math.ceil(p * _KEY_SPAN)


class XorShift64Star:
    """Lane-parallel xorshift64* PRNG.

    Each lane holds independent 64-bit state.  ``shape`` is arbitrary; the
    virtual GPU uses shape ``(B, n)`` — one lane per (block, thread) pair,
    mirroring the per-thread RNG of the CUDA implementation.
    """

    __slots__ = ("state", "_scratch")

    def __init__(self, seeds: np.ndarray) -> None:
        state = np.ascontiguousarray(seeds, dtype=np.uint64)
        if np.any(state == 0):
            raise ValueError("xorshift64* seeds must be non-zero")
        self.state = state.copy()
        self._scratch: np.ndarray | None = None

    @classmethod
    def view(cls, state: np.ndarray) -> "XorShift64Star":
        """A generator over *state* without copying it.

        All advancement runs through in-place ufuncs, so a view over a row
        slice of a larger lane array (the coalesced super-launch's merged
        RNG block, DESIGN.md §12) mutates the parent rows directly.  The
        caller guarantees non-zero uint64 lanes.
        """
        gen = object.__new__(cls)
        gen.state = state
        gen._scratch = None
        return gen

    @property
    def shape(self):
        """Lane array shape."""
        return self.state.shape

    # -- lane advancement --------------------------------------------------
    def advance(self) -> None:
        """Advance every lane in place without materializing outputs.

        Allocation-free after the first call (one reused uint64 scratch),
        so fused kernels that only need the scrambled *keys* skip the float
        conversion entirely.
        """
        x = self.state
        s = self._scratch
        if s is None:
            s = self._scratch = np.empty_like(x)
        np.right_shift(x, _U12, out=s)
        np.bitwise_xor(x, s, out=x)
        np.left_shift(x, _U25, out=s)
        np.bitwise_xor(x, s, out=x)
        np.right_shift(x, _U27, out=s)
        np.bitwise_xor(x, s, out=x)

    def next_uint64(self) -> np.ndarray:
        """Advance every lane; return the scrambled 64-bit outputs."""
        self.advance()
        return self.state * _MULTIPLIER

    def next_keys(self, out: np.ndarray | None = None) -> np.ndarray:
        """Advance every lane; return 53-bit integer keys (int64, ≥ 0).

        ``key = (state · M) >> 11`` — exactly the integer whose scaling by
        2⁻⁵³ is :meth:`random`'s output, so ordering/equality of keys and
        floats coincide bit-exactly.
        """
        self.advance()
        if out is None:
            out = np.empty(self.shape, dtype=np.int64)
        u = out.view(np.uint64)
        np.multiply(self.state, _MULTIPLIER, out=u)
        np.right_shift(u, _U11, out=u)
        return out

    def random(self) -> np.ndarray:
        """Uniform float64 in [0, 1) per lane (53-bit resolution)."""
        return (self.next_uint64() >> _U11).astype(np.float64) * _DOUBLE_SCALE

    def row_random(self, col: int = 0) -> np.ndarray:
        """Uniform float64 in [0, 1) per **row**, advancing only lane
        column *col* — the device analogue of "thread 0 draws for the
        block".  Requires a 2-D lane array.
        """
        lane = self.state[:, col]
        lane ^= lane >> _U12
        lane ^= lane << _U25
        lane ^= lane >> _U27
        return ((lane * _MULTIPLIER) >> _U11).astype(np.float64) * _DOUBLE_SCALE

    def bernoulli(self, p) -> np.ndarray:
        """Boolean array: lane-wise True with probability *p*.

        Scalar *p* takes the integer-threshold fast path (bit-identical to
        ``random() < p``, see :func:`bernoulli_threshold`); array *p* falls
        back to the float comparison.
        """
        if np.ndim(p) == 0:
            return self.next_keys() < bernoulli_threshold(float(p))
        return self.random() < p

    def integers(self, high: int) -> np.ndarray:
        """Lane-wise integers uniform in [0, high) (multiply-shift, unbiased
        enough for search heuristics; exact rejection sampling is not needed
        because selections are re-randomized every flip)."""
        if high <= 0:
            raise ValueError(f"high must be positive, got {high}")
        return (self.random() * high).astype(np.int64)
