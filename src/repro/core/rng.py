"""Random number generation matching the paper's two-level scheme (§V).

The host uses the Mersenne twister to generate one 64-bit seed per device
thread; each device thread then advances a cheap xorshift generator locally.
We reproduce this exactly:

* :func:`host_generator` — an MT19937-backed NumPy ``Generator`` for all
  host-side decisions (genetic operations, adaptive selection).
* :class:`XorShift64Star` — a vectorized lane-parallel xorshift64* generator;
  one lane per virtual device thread, all lanes advanced by single fused
  uint64 ufunc expressions (no Python-level per-lane loop).

Determinism: a full solver run is a pure function of (model, config, seed).
"""

from __future__ import annotations

import numpy as np

__all__ = ["host_generator", "spawn_device_seeds", "XorShift64Star"]

_MULTIPLIER = np.uint64(0x2545F4914F6CDD1D)
_DOUBLE_SCALE = float(2.0**-53)


def host_generator(seed: int | None) -> np.random.Generator:
    """Mersenne-twister host RNG, as used on the host CPU in the paper."""
    return np.random.Generator(np.random.MT19937(seed))


def spawn_device_seeds(rng: np.random.Generator, shape) -> np.ndarray:
    """Draw non-zero 64-bit xorshift seeds from the host generator."""
    seeds = rng.integers(1, np.iinfo(np.uint64).max, size=shape, dtype=np.uint64)
    return seeds


class XorShift64Star:
    """Lane-parallel xorshift64* PRNG.

    Each lane holds independent 64-bit state.  ``shape`` is arbitrary; the
    virtual GPU uses shape ``(B, n)`` — one lane per (block, thread) pair,
    mirroring the per-thread RNG of the CUDA implementation.
    """

    __slots__ = ("state",)

    def __init__(self, seeds: np.ndarray) -> None:
        state = np.ascontiguousarray(seeds, dtype=np.uint64)
        if np.any(state == 0):
            raise ValueError("xorshift64* seeds must be non-zero")
        self.state = state.copy()

    @property
    def shape(self):
        """Lane array shape."""
        return self.state.shape

    def next_uint64(self) -> np.ndarray:
        """Advance every lane; return the scrambled 64-bit outputs."""
        x = self.state
        x ^= x >> np.uint64(12)
        x ^= x << np.uint64(25)
        x ^= x >> np.uint64(27)
        return x * _MULTIPLIER

    def random(self) -> np.ndarray:
        """Uniform float64 in [0, 1) per lane (53-bit resolution)."""
        return (self.next_uint64() >> np.uint64(11)).astype(np.float64) * _DOUBLE_SCALE

    def bernoulli(self, p) -> np.ndarray:
        """Boolean array: lane-wise True with probability *p*.

        *p* may be a scalar or broadcastable against the lane shape.
        """
        return self.random() < p

    def integers(self, high: int) -> np.ndarray:
        """Lane-wise integers uniform in [0, high) (multiply-shift, unbiased
        enough for search heuristics; exact rejection sampling is not needed
        because selections are re-randomized every flip)."""
        if high <= 0:
            raise ValueError(f"high must be positive, got {high}")
        return (self.random() * high).astype(np.int64)
