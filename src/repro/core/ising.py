"""Ising model and exact Ising ↔ QUBO conversion (paper §I.A, Fig. 1).

An Ising model is a weighted graph with interactions ``J[i,j]`` on edges and
biases ``h[i]`` on nodes; the Hamiltonian of a spin vector ``S`` with
``s_i ∈ {−1, +1}`` is

    H(S) = sum_{(i,j)} J[i,j] * s_i * s_j + sum_i h[i] * s_i.

Conversions use the substitution ``s_i = 2 x_i − 1`` so that spins −1/+1 map
to bits 0/1.  The conversion is exact up to a constant *offset*:
``E(X) = H(S) + offset`` for every corresponding pair — the paper's Fig. 1
example has offset 6 (E = −8, H = −14 at the optimum).
"""

from __future__ import annotations

import numpy as np

from repro.core.qubo import QUBOModel
from repro.utils.validation import check_square_matrix

__all__ = ["IsingModel", "ising_to_qubo", "qubo_to_ising", "spins_to_bits", "bits_to_spins"]


def spins_to_bits(s) -> np.ndarray:
    """Map a ±1 spin vector to the corresponding 0/1 bit vector."""
    s = np.asarray(s)
    if not np.all(np.isin(s, (-1, 1))):
        raise ValueError("spin vector must contain only -1/+1 values")
    return ((s + 1) // 2).astype(np.uint8)


def bits_to_spins(x) -> np.ndarray:
    """Map a 0/1 bit vector to the corresponding ±1 spin vector."""
    x = np.asarray(x)
    if not np.all(np.isin(x, (0, 1))):
        raise ValueError("bit vector must contain only 0/1 values")
    return (2 * x.astype(np.int64) - 1)


class IsingModel:
    """Dense Ising model with interactions ``J`` and biases ``h``.

    ``J`` may be any square matrix; it is folded into upper-triangular form
    with a zero diagonal (self-interactions are rejected because ``s_i² = 1``
    would silently become a constant).
    """

    __slots__ = ("_j", "_h", "name")

    def __init__(self, interactions, biases, name: str = "") -> None:
        j = check_square_matrix(interactions, "interactions")
        if np.issubdtype(j.dtype, np.floating) and np.allclose(j, np.rint(j)):
            j = np.rint(j).astype(np.int64)
        h = np.asarray(biases)
        if h.ndim != 1 or h.shape[0] != j.shape[0]:
            raise ValueError(
                f"biases must have shape ({j.shape[0]},), got {h.shape}"
            )
        if np.issubdtype(h.dtype, np.floating) and np.allclose(h, np.rint(h)):
            h = np.rint(h).astype(np.int64)
        if np.any(np.diagonal(j) != 0):
            raise ValueError("Ising interactions must have a zero diagonal")
        self._j = np.ascontiguousarray(np.triu(j) + np.tril(j, -1).T)
        self._h = np.ascontiguousarray(h)
        self.name = name or f"ising-{self.n}"

    @property
    def n(self) -> int:
        """Number of spins."""
        return self._j.shape[0]

    @property
    def interactions(self) -> np.ndarray:
        """Upper-triangular interaction matrix ``J`` (read-only view)."""
        v = self._j.view()
        v.flags.writeable = False
        return v

    @property
    def biases(self) -> np.ndarray:
        """Bias vector ``h`` (read-only view)."""
        v = self._h.view()
        v.flags.writeable = False
        return v

    @property
    def num_interactions(self) -> int:
        """Number of non-zero interactions (graph edges)."""
        return int(np.count_nonzero(self._j))

    def hamiltonian(self, spins) -> int | float:
        """Exact Hamiltonian ``H(S)`` of one ±1 spin vector (Eq. 1)."""
        s = np.asarray(spins)
        if s.shape != (self.n,):
            raise ValueError(f"expected shape ({self.n},), got {s.shape}")
        if not np.all(np.isin(s, (-1, 1))):
            raise ValueError("spin vector must contain only -1/+1 values")
        s = s.astype(self._j.dtype)
        return (s @ self._j @ s + self._h @ s).item()

    def resolution(self) -> int | None:
        """Smallest integer ``r`` such that all J are multiples of 1/r within
        [−r, r] and all h within [−4r, 4r] (paper §II.C), for integer models.

        Returns ``None`` for non-integer models.
        """
        if not np.issubdtype(self._j.dtype, np.integer):
            return None
        jmax = int(np.abs(self._j).max(initial=0))
        hmax = int(np.abs(self._h).max(initial=0))
        return max(jmax, -(-hmax // 4), 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IsingModel(name={self.name!r}, n={self.n}, "
            f"interactions={self.num_interactions})"
        )


def ising_to_qubo(model: IsingModel) -> tuple[QUBOModel, int | float]:
    """Convert an Ising model to the equivalent QUBO model.

    Returns ``(qubo, offset)`` with ``E(X) = H(S) + offset`` for all
    corresponding ``X``/``S``.  Substituting ``s_i = 2 x_i − 1``:

    * edge (i, j):  ``J s_i s_j = 4J x_i x_j − 2J x_i − 2J x_j + J``
    * node i:       ``h s_i = 2h x_i − h``

    so ``W[i,j] = 4 J[i,j]``, ``W[i,i] = 2 h_i − 2 Σ_j (J[i,j] + J[j,i])`` and
    the constant collected on the Hamiltonian side is ``Σ J − Σ h``, giving
    ``offset = Σ h − Σ J``.
    """
    j = model.interactions
    h = model.biases
    w = 4 * j.astype(np.int64 if np.issubdtype(j.dtype, np.integer) else np.float64)
    row_strength = j.sum(axis=1) + j.sum(axis=0)  # Σ_j J over incident edges
    diag = 2 * h - 2 * row_strength
    w = w + np.diag(diag)
    offset = (h.sum() - j.sum()).item()
    return QUBOModel(w, name=f"{model.name}-as-qubo"), offset


def qubo_to_ising(model: QUBOModel) -> tuple[IsingModel, int | float, int]:
    """Convert a QUBO model to the equivalent Ising model.

    Returns ``(ising, offset, scale)`` with
    ``scale · E(X) = H(S) + offset``.  Substituting ``x_i = (s_i + 1)/2``
    into Eq. (2):

    * ``J[i,j] = W[i,j] / 4``,
    * ``h[i] = W[i,i]/2 + Σ_j (W[i,j] + W[j,i]) / 4``,
    * ``offset = Σ_{i<j} W[i,j]/4 + Σ_i W[i,i]/2``.

    To stay in exact integer arithmetic the QUBO is implicitly multiplied by
    4 when its weights are not all even multiples (``scale = 4``); the
    outputs of :func:`ising_to_qubo` always convert back with ``scale = 1``,
    giving a clean round trip.  Minimizers are unaffected by the scale.
    """
    u = model.upper
    off_diag = np.triu(u, 1)
    diag = model.linear
    integer = np.issubdtype(u.dtype, np.integer)
    if integer and (np.any(off_diag % 4 != 0) or np.any(diag % 2 != 0)):
        scale = 4
        off_diag = off_diag * 4
        diag = diag * 4
        name = f"{model.name}-as-ising-x4"
    else:
        scale = 1
        name = f"{model.name}-as-ising"
    j = off_diag // 4 if integer else off_diag / 4
    row_strength = off_diag.sum(axis=1) + off_diag.sum(axis=0)
    if integer:
        h = diag // 2 + row_strength // 4
        offset = int(off_diag.sum()) // 4 + int(diag.sum()) // 2
    else:
        h = diag / 2 + row_strength / 4
        offset = off_diag.sum() / 4 + diag.sum() / 2
    ising = IsingModel(j, h, name=name)
    return ising, offset, scale
