"""Incremental search engine: O(n)-per-flip energy/gain maintenance.

This is the paper's §III.A core: a local search state holding the current
solution ``X``, its energy ``E(X)``, and the flip-gain vector
``Δ_k(X) = E(f_k(X)) − E(X)`` for all ``k``, kept consistent under bit flips
using Eq. (4)/(5):

    Δ_k(f_i(X)) = Δ_k(X) + S[i,k] · σ(x_i) · σ(x_k)   (k ≠ i)
    Δ_i(f_i(X)) = −Δ_i(X)

where ``S`` is the symmetric coupling matrix, ``σ(x) = 2x − 1`` and ``x_i``
is the *pre-flip* value of the flipped bit (equivalently
``−σ(x̄_i) σ(x_k) = σ(x̄_i)(1 − 2 x_k)`` with the new value ``x̄_i``; the
paper's Eq. (4) intermediate line uses the new value, its final form the old
one — the old-value form is the algebraically correct one and is what both
engines implement, verified against from-scratch recomputation in tests).

Two implementations share the math:

* :class:`DeltaState` — one solution vector; the readable reference used by
  single-threaded baselines and tests.
* :class:`BatchDeltaState` — ``B`` vectors advanced in lockstep; rows play
  the role of CUDA blocks.  It is a thin facade over a pluggable
  :class:`~repro.backends.base.ComputeBackend` (see :mod:`repro.backends`,
  DESIGN.md §2), which owns the actual kernels: dense NumPy row-gather
  updates, CSR neighbourhood updates, or an optional numba JIT.  Every
  backend is bit-exactly interchangeable on integer models.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as sp

from repro.backends import resolve_backend
from repro.core.qubo import QUBOModel
from repro.utils.validation import check_bit_vector

__all__ = ["DeltaState", "BatchDeltaState"]


class DeltaState:
    """Incremental state for a single solution vector.

    Starts from the zero vector by default — ``E = 0`` and ``Δ_k = W[k,k]``
    (paper §III.A) — or from any given vector via ``reset``.
    """

    __slots__ = ("model", "_s", "_lin", "x", "energy", "delta", "_sparse")

    def __init__(self, model, x=None) -> None:
        self.model = model
        self._s = model.couplings
        self._lin = model.linear
        self._sparse = sp.issparse(self._s)
        self.reset(x)

    def reset(self, x=None) -> None:
        """Reinitialize from vector *x* (zero vector if omitted)."""
        n = self.model.n
        if x is None:
            self.x = np.zeros(n, dtype=np.uint8)
            self.energy = self._lin.dtype.type(0).item()
            self.delta = self._lin.copy()
        else:
            self.x = check_bit_vector(x, n).copy()
            self.energy = self.model.energy(self.x)
            self.delta = self.model.delta_vector(self.x)

    def flip(self, i: int) -> None:
        """Flip bit *i*, updating ``x``, ``energy`` and ``delta`` in O(n)
        (O(degree) for sparse models)."""
        d_i = self.delta[i]
        self.energy += d_i.item()
        s_old = 2 * int(self.x[i]) - 1  # σ(x_i) of the pre-flip value
        self.x[i] ^= 1
        if self._sparse:
            lo, hi = self._s.indptr[i], self._s.indptr[i + 1]
            neighbours = self._s.indices[lo:hi]
            weights = self._s.data[lo:hi]
            sigma_nbr = 2 * self.x[neighbours].astype(np.int64) - 1
            self.delta[neighbours] += weights * (s_old * sigma_nbr)
        else:
            sigma = 2 * self.x.astype(self._s.dtype) - 1
            self.delta += self._s[i] * (s_old * sigma)
        self.delta[i] = -d_i

    def best_neighbor(self) -> tuple[int, int | float]:
        """Index and energy of the best 1-bit neighbour ``f_j(X)``."""
        j = int(np.argmin(self.delta))
        return j, self.energy + self.delta[j].item()

    def neighbor_energies(self) -> np.ndarray:
        """Energies of all 1-bit neighbours, ``E(X) + Δ``."""
        return self.energy + self.delta

    def is_local_minimum(self) -> bool:
        """True when no 1-bit flip decreases the energy (all ``Δ ≥ 0``)."""
        return bool(np.all(self.delta >= 0))

    def recompute(self) -> None:
        """Recompute energy and delta from scratch (O(n²) consistency check)."""
        self.energy = self.model.energy(self.x)
        self.delta = self.model.delta_vector(self.x)


class BatchDeltaState:
    """Incremental state for ``B`` solution vectors advanced in lockstep.

    A facade: the arrays live here, the kernels live on a pluggable
    :class:`~repro.backends.base.ComputeBackend`.  ``backend`` may be a
    backend instance, a registered name (``"numpy-dense"``,
    ``"numpy-sparse"``, ``"numba"``), ``"auto"`` or ``None`` (consults the
    ``REPRO_BACKEND`` environment variable, then the auto density rule).

    Attributes
    ----------
    x:
        ``(B, n)`` uint8 current solutions (one row per virtual CUDA block).
    energy:
        ``(B,)`` current energies.
    delta:
        ``(B, n)`` flip gains.
    backend:
        The resolved :class:`~repro.backends.base.ComputeBackend`.
    kernel:
        The backend's per-model read-only kernel cache.
    device:
        Backend-owned device mirror of the state buffers (``None`` until a
        device backend such as ``cuda`` first stages this state; host
        backends never touch it).  Like the scratch buffers it follows the
        state object's lifetime, so states cached across virtual-GPU
        launches keep their device allocations.

    ``reset`` reuses the existing buffers, so a state cached across virtual
    GPU launches (see :class:`~repro.gpu.virtual_gpu.VirtualGPU`) incurs no
    allocation churn.
    """

    __slots__ = (
        "model",
        "batch",
        "backend",
        "kernel",
        "x",
        "energy",
        "delta",
        "device",
        "_rows",
        "_scratch",
    )

    def __init__(self, model, batch: int, backend=None, kernel=None) -> None:
        if batch <= 0:
            raise ValueError(f"batch must be positive, got {batch}")
        self.model = model
        self.batch = batch
        self.backend = resolve_backend(backend, model)
        self.kernel = kernel if kernel is not None else self.backend.prepare(model)
        self._rows = np.arange(batch)
        self._scratch = {}
        self.x = None
        self.energy = None
        self.delta = None
        self.device = None
        self.backend.reset(self)

    def scratch(self, key: str, dtype) -> np.ndarray:
        """A named reused ``(B, n)`` work buffer (fused phase runners).

        Allocated lazily once per (state, key) and never cleared — callers
        own the contents only within a single phase iteration.  States
        cached across virtual-GPU launches therefore run fused phases with
        zero per-flip allocation.
        """
        arr = self._scratch.get(key)
        if arr is None:
            arr = self._scratch[key] = np.empty((self.batch, self.n), dtype=dtype)
        return arr

    @property
    def n(self) -> int:
        """Number of binary variables."""
        return self.model.n

    def row_view(self, batch: int) -> "BatchDeltaState":
        """A facade over the first *batch* rows, sharing buffers and kernel.

        Row slices of C-contiguous arrays stay contiguous, so the view runs
        the same kernels at full speed; flips/resets through it mutate the
        parent's rows.  The virtual GPU uses this to run lockstep sub-groups
        of any size without allocating per-size device buffers.
        """
        if not 1 <= batch <= self.batch:
            raise ValueError(
                f"view batch must be in [1, {self.batch}], got {batch}"
            )
        view = object.__new__(BatchDeltaState)
        view.model = self.model
        view.batch = batch
        view.backend = self.backend
        view.kernel = self.kernel
        view.x = self.x[:batch]
        view.energy = self.energy[:batch]
        view.delta = self.delta[:batch]
        view.device = None  # device mirrors are per-(object, shape)
        view._rows = self._rows[:batch]
        view._scratch = {}
        return view

    def row_window(self, start: int, stop: int) -> "BatchDeltaState":
        """A facade over rows ``[start, stop)``, sharing buffers and kernel.

        The row-range generalisation of :meth:`row_view`, used by the
        super-launch executor (DESIGN.md §12) to phase over contiguous
        spans of a stacked multi-job batch.  ``_rows`` is re-based to the
        window so fancy row indexing inside kernels stays window-local.
        """
        if not 0 <= start < stop <= self.batch:
            raise ValueError(
                f"window must satisfy 0 <= start < stop <= {self.batch}, "
                f"got [{start}, {stop})"
            )
        view = object.__new__(BatchDeltaState)
        view.model = self.model
        view.batch = stop - start
        view.backend = self.backend
        view.kernel = self.kernel
        view.x = self.x[start:stop]
        view.energy = self.energy[start:stop]
        view.delta = self.delta[start:stop]
        view.device = None  # device mirrors are per-(object, shape)
        view._rows = np.arange(stop - start)
        view._scratch = {}
        return view

    def reset(self, x=None) -> None:
        """Reinitialize all rows from ``x`` (``(B, n)`` or broadcastable row);
        zero vectors if omitted.  Buffers are reused in place."""
        self.backend.reset(self, x)

    def flip(self, idx: np.ndarray, active: np.ndarray | None = None) -> None:
        """Flip bit ``idx[r]`` in every active row *r* (backend kernel).

        Parameters
        ----------
        idx:
            ``(B,)`` bit indices, one per row.
        active:
            Optional ``(B,)`` boolean mask; inactive rows are untouched
            (the masked-lane analogue of warp divergence).
        """
        self.backend.flip(self, idx, active)

    def neighbor_min(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-row best 1-bit neighbour: ``(argmin_k Δ, E + min_k Δ)``."""
        return self.backend.neighbor_min(self)

    def is_local_minimum(self) -> np.ndarray:
        """Per-row flag: no 1-bit flip decreases the energy."""
        return self.backend.is_local_minimum(self)

    def recompute(self) -> None:
        """Recompute energies/deltas from scratch (O(B·n²), tests only)."""
        self.backend.recompute(self)
