"""Incremental search engine: O(n)-per-flip energy/gain maintenance.

This is the paper's §III.A core: a local search state holding the current
solution ``X``, its energy ``E(X)``, and the flip-gain vector
``Δ_k(X) = E(f_k(X)) − E(X)`` for all ``k``, kept consistent under bit flips
using Eq. (4)/(5):

    Δ_k(f_i(X)) = Δ_k(X) + S[i,k] · σ(x_i) · σ(x_k)   (k ≠ i)
    Δ_i(f_i(X)) = −Δ_i(X)

where ``S`` is the symmetric coupling matrix, ``σ(x) = 2x − 1`` and ``x_i``
is the *pre-flip* value of the flipped bit (equivalently
``−σ(x̄_i) σ(x_k) = σ(x̄_i)(1 − 2 x_k)`` with the new value ``x̄_i``; the
paper's Eq. (4) intermediate line uses the new value, its final form the old
one — the old-value form is the algebraically correct one and is what both
engines implement, verified against from-scratch recomputation in tests).

Two implementations share the math:

* :class:`DeltaState` — one solution vector; the readable reference used by
  single-threaded baselines and tests.
* :class:`BatchDeltaState` — ``B`` vectors advanced in lockstep; rows play
  the role of CUDA blocks.  Per flip it performs one row-gather of ``S`` and
  fused in-place updates — O(B·n) work and contiguous memory traffic, the
  NumPy analogue of the paper's one-Δ-per-thread register layout.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as sp

from repro.core.qubo import QUBOModel
from repro.utils.validation import check_bit_vector

__all__ = ["DeltaState", "BatchDeltaState"]


def _flat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(s, s + c)`` for each (s, c) pair, vectorized."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    cum = np.cumsum(counts)
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(cum - counts, counts)
        + np.repeat(starts, counts)
    )


class DeltaState:
    """Incremental state for a single solution vector.

    Starts from the zero vector by default — ``E = 0`` and ``Δ_k = W[k,k]``
    (paper §III.A) — or from any given vector via ``reset``.
    """

    __slots__ = ("model", "_s", "_lin", "x", "energy", "delta", "_sparse")

    def __init__(self, model, x=None) -> None:
        self.model = model
        self._s = model.couplings
        self._lin = model.linear
        self._sparse = sp.issparse(self._s)
        self.reset(x)

    def reset(self, x=None) -> None:
        """Reinitialize from vector *x* (zero vector if omitted)."""
        n = self.model.n
        if x is None:
            self.x = np.zeros(n, dtype=np.uint8)
            self.energy = self._lin.dtype.type(0).item()
            self.delta = self._lin.copy()
        else:
            self.x = check_bit_vector(x, n).copy()
            self.energy = self.model.energy(self.x)
            self.delta = self.model.delta_vector(self.x)

    def flip(self, i: int) -> None:
        """Flip bit *i*, updating ``x``, ``energy`` and ``delta`` in O(n)
        (O(degree) for sparse models)."""
        d_i = self.delta[i]
        self.energy += d_i.item()
        s_old = 2 * int(self.x[i]) - 1  # σ(x_i) of the pre-flip value
        self.x[i] ^= 1
        if self._sparse:
            lo, hi = self._s.indptr[i], self._s.indptr[i + 1]
            neighbours = self._s.indices[lo:hi]
            weights = self._s.data[lo:hi]
            sigma_nbr = 2 * self.x[neighbours].astype(np.int64) - 1
            self.delta[neighbours] += weights * (s_old * sigma_nbr)
        else:
            sigma = 2 * self.x.astype(self._s.dtype) - 1
            self.delta += self._s[i] * (s_old * sigma)
        self.delta[i] = -d_i

    def best_neighbor(self) -> tuple[int, int | float]:
        """Index and energy of the best 1-bit neighbour ``f_j(X)``."""
        j = int(np.argmin(self.delta))
        return j, self.energy + self.delta[j].item()

    def neighbor_energies(self) -> np.ndarray:
        """Energies of all 1-bit neighbours, ``E(X) + Δ``."""
        return self.energy + self.delta

    def is_local_minimum(self) -> bool:
        """True when no 1-bit flip decreases the energy (all ``Δ ≥ 0``)."""
        return bool(np.all(self.delta >= 0))

    def recompute(self) -> None:
        """Recompute energy and delta from scratch (O(n²) consistency check)."""
        self.energy = self.model.energy(self.x)
        self.delta = self.model.delta_vector(self.x)


class BatchDeltaState:
    """Incremental state for ``B`` solution vectors advanced in lockstep.

    Attributes
    ----------
    x:
        ``(B, n)`` uint8 current solutions (one row per virtual CUDA block).
    energy:
        ``(B,)`` current energies.
    delta:
        ``(B, n)`` flip gains.
    """

    __slots__ = (
        "model",
        "_s",
        "_lin",
        "batch",
        "x",
        "energy",
        "delta",
        "_rows",
        "_sparse",
        "_indptr",
        "_indices",
        "_data",
    )

    def __init__(self, model, batch: int) -> None:
        if batch <= 0:
            raise ValueError(f"batch must be positive, got {batch}")
        self.model = model
        self._s = model.couplings
        self._lin = model.linear
        self._sparse = sp.issparse(self._s)
        if self._sparse:
            csr = self._s
            self._indptr = np.asarray(csr.indptr, dtype=np.int64)
            self._indices = np.asarray(csr.indices, dtype=np.int64)
            self._data = np.asarray(csr.data, dtype=np.int64)
        else:
            self._indptr = self._indices = self._data = None
        self.batch = batch
        self._rows = np.arange(batch)
        self.reset()

    @property
    def n(self) -> int:
        """Number of binary variables."""
        return self.model.n

    def reset(self, x=None) -> None:
        """Reinitialize all rows from ``x`` (``(B, n)`` or broadcastable row);
        zero vectors if omitted."""
        n, b = self.model.n, self.batch
        dtype = self._lin.dtype
        if x is None:
            self.x = np.zeros((b, n), dtype=np.uint8)
            self.energy = np.zeros(b, dtype=dtype)
            self.delta = np.broadcast_to(self._lin, (b, n)).copy()
        else:
            x = np.asarray(x, dtype=np.uint8)
            self.x = np.ascontiguousarray(np.broadcast_to(x, (b, n))).copy()
            xi = self.x.astype(dtype)
            self.energy = self.model.energies(self.x).astype(dtype)
            if self._sparse:
                contrib = (self._s @ xi.T).T + self._lin  # S symmetric
            else:
                contrib = xi @ self._s + self._lin
            self.delta = (1 - 2 * xi) * contrib

    def flip(self, idx: np.ndarray, active: np.ndarray | None = None) -> None:
        """Flip bit ``idx[r]`` in every active row *r* (O(B·n) fused update).

        Parameters
        ----------
        idx:
            ``(B,)`` bit indices, one per row.
        active:
            Optional ``(B,)`` boolean mask; inactive rows are untouched
            (the masked-lane analogue of warp divergence).
        """
        if self._sparse:
            if active is None:
                rows = self._rows
                cols = np.asarray(idx)
            else:
                rows = np.flatnonzero(active)
                if rows.size == 0:
                    return
                cols = np.asarray(idx)[rows]
            self._flip_sparse(rows, cols)
            return
        if active is None:
            # fast path: all rows flip — no row gathers, fully in-place
            rows = self._rows
            cols = np.asarray(idx)
            d_i = self.delta[rows, cols].copy()
            self.energy += d_i
            old_bits = self.x[rows, cols]
            s_old = (2 * old_bits.astype(self._s.dtype) - 1)[:, None]
            self.x[rows, cols] = old_bits ^ 1
            sigma = 2 * self.x.astype(self._s.dtype) - 1
            self.delta += self._s[cols] * (s_old * sigma)
            self.delta[rows, cols] = -d_i
            return
        rows = np.flatnonzero(active)
        if rows.size == 0:
            return
        cols = np.asarray(idx)[rows]
        d_i = self.delta[rows, cols].copy()
        self.energy[rows] += d_i
        old_bits = self.x[rows, cols]
        s_old = (2 * old_bits.astype(self._s.dtype) - 1)[:, None]
        self.x[rows, cols] = old_bits ^ 1
        sigma = 2 * self.x[rows].astype(self._s.dtype) - 1
        self.delta[rows] += self._s[cols] * (s_old * sigma)
        self.delta[rows, cols] = -d_i

    def _flip_sparse(self, rows: np.ndarray, cols: np.ndarray) -> None:
        """CSR flip path: touch only the O(degree) neighbours of each flip.

        Index pairs ``(row, neighbour)`` are unique (each CSR row holds
        distinct columns and batch rows are distinct), so the fancy-indexed
        in-place add is safe.
        """
        d_i = self.delta[rows, cols].copy()
        self.energy[rows] += d_i
        old_bits = self.x[rows, cols]
        s_old = 2 * old_bits.astype(np.int64) - 1
        self.x[rows, cols] = old_bits ^ 1
        starts = self._indptr[cols]
        counts = self._indptr[cols + 1] - starts
        flat = _flat_ranges(starts, counts)
        neighbours = self._indices[flat]
        weights = self._data[flat]
        row_rep = np.repeat(rows, counts)
        s_old_rep = np.repeat(s_old, counts)
        sigma_nbr = 2 * self.x[row_rep, neighbours].astype(np.int64) - 1
        self.delta[row_rep, neighbours] += weights * s_old_rep * sigma_nbr
        self.delta[rows, cols] = -d_i

    def neighbor_min(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-row best 1-bit neighbour: ``(argmin_k Δ, E + min_k Δ)``."""
        j = np.argmin(self.delta, axis=1)
        return j, self.energy + self.delta[self._rows, j]

    def is_local_minimum(self) -> np.ndarray:
        """Per-row flag: no 1-bit flip decreases the energy."""
        return np.all(self.delta >= 0, axis=1)

    def recompute(self) -> None:
        """Recompute energies/deltas from scratch (O(B·n²), tests only)."""
        dtype = self._lin.dtype
        xi = self.x.astype(dtype)
        self.energy = self.model.energies(self.x).astype(dtype)
        if self._sparse:
            contrib = (self._s @ xi.T).T + self._lin
        else:
            contrib = xi @ self._s + self._lin
        self.delta = (1 - 2 * xi) * contrib
