"""Fixed-width histograms in the paper's convention (§VI).

"In these histograms, bins with labels b1, b2, … mean that each b_i
corresponds to the range [b_i, b_{i+1})."  Values are binned into
equal-width half-open intervals and rendered as labelled ASCII bars, which
is how the figures (5, 6, 7) are regenerated in a terminal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Histogram"]


@dataclass
class Histogram:
    """Counts over equal-width half-open bins ``[edge_i, edge_{i+1})``."""

    bin_edges: np.ndarray
    counts: np.ndarray
    label: str = ""

    @classmethod
    def from_values(
        cls,
        values,
        bin_width: float,
        start: float | None = None,
        label: str = "",
    ) -> "Histogram":
        """Bin *values* into ``[start + k·w, start + (k+1)·w)`` intervals.

        ``start`` defaults to the largest multiple of ``bin_width`` not
        exceeding the minimum value (so bin labels land on round numbers,
        as in the paper's figures).
        """
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            raise ValueError("cannot build a histogram of zero values")
        if bin_width <= 0:
            raise ValueError("bin_width must be > 0")
        if start is None:
            start = np.floor(values.min() / bin_width) * bin_width
        if values.min() < start:
            raise ValueError(
                f"start {start} exceeds the minimum value {values.min()}"
            )
        num_bins = int(np.floor((values.max() - start) / bin_width)) + 1
        edges = start + bin_width * np.arange(num_bins + 1)
        idx = np.floor((values - start) / bin_width).astype(np.int64)
        counts = np.bincount(idx, minlength=num_bins)
        return cls(bin_edges=edges, counts=counts, label=label)

    @property
    def num_bins(self) -> int:
        """Number of bins."""
        return len(self.counts)

    @property
    def total(self) -> int:
        """Total number of binned values."""
        return int(self.counts.sum())

    def bin_label(self, i: int) -> str:
        """The paper-style label of bin *i*: its left edge."""
        edge = self.bin_edges[i]
        return f"{edge:g}"

    def to_rows(self) -> list[tuple[str, int]]:
        """``(label, count)`` pairs for tabular output."""
        return [(self.bin_label(i), int(self.counts[i])) for i in range(self.num_bins)]

    def render_ascii(self, width: int = 50) -> str:
        """Labelled horizontal bar chart."""
        peak = max(1, int(self.counts.max()))
        lines = []
        if self.label:
            lines.append(self.label)
        label_width = max(len(self.bin_label(i)) for i in range(self.num_bins))
        for i in range(self.num_bins):
            bar = "#" * int(round(width * self.counts[i] / peak))
            lines.append(
                f"{self.bin_label(i):>{label_width}} | {bar} {int(self.counts[i])}"
            )
        return "\n".join(lines)
