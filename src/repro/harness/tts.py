"""Time-To-Solution measurement (paper §VI methodology).

The paper reports, per instance:

* for DABS — the average TTS over repeated executions (all of which are
  expected to reach the potentially optimal solution),
* for ABS — a *time limit* plus the probability of reaching the target
  within it and the average TTS **of the successful trials only** ("the TTS
  does not count the execution time of a trial if it fails").

:func:`measure_tts` implements exactly that protocol for any solver exposing
``solve(target_energy=…, time_limit=…)`` and returning an object with
``reached_target`` / ``time_to_target`` / ``best_energy`` fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = ["TrialRecord", "TTSResult", "measure_tts"]


@dataclass(frozen=True)
class TrialRecord:
    """One repeated-execution trial.

    ``rounds`` is the substrate-neutral effort metric: on real GPUs every
    round costs the same wall time regardless of how many distinct
    algorithms it mixes, whereas the lockstep emulation pays per-group
    Python dispatch (see EXPERIMENTS.md) — so DABS/ABS comparisons should
    quote rounds alongside wall-clock TTS.
    """

    seed: int
    success: bool
    time_to_target: float | None
    best_energy: int
    elapsed: float
    rounds: int = 0


@dataclass
class TTSResult:
    """Aggregate TTS statistics over repeated trials."""

    target_energy: int
    records: list[TrialRecord] = field(default_factory=list)

    @property
    def trials(self) -> int:
        """Number of executions."""
        return len(self.records)

    @property
    def successes(self) -> int:
        """Executions that reached the target."""
        return sum(r.success for r in self.records)

    @property
    def success_probability(self) -> float:
        """Fraction of executions that reached the target."""
        return self.successes / self.trials if self.trials else 0.0

    @property
    def tts_values(self) -> np.ndarray:
        """TTS of the successful trials (paper: failures are not counted)."""
        return np.array(
            [r.time_to_target for r in self.records if r.success], dtype=np.float64
        )

    @property
    def mean_tts(self) -> float | None:
        """Average TTS over successes, or None when nothing succeeded."""
        values = self.tts_values
        return float(values.mean()) if values.size else None

    @property
    def mean_rounds(self) -> float | None:
        """Average rounds-to-target over successes (substrate-neutral)."""
        values = [r.rounds for r in self.records if r.success]
        return float(np.mean(values)) if values else None

    @property
    def best_energy(self) -> int:
        """Best energy over all trials (even failed ones)."""
        return min(r.best_energy for r in self.records)

    def summary(self) -> str:
        """One-line summary in the paper's reporting style."""
        tts = f"{self.mean_tts:.3f}s" if self.mean_tts is not None else "n/a"
        return (
            f"target={self.target_energy}: TTS={tts}, "
            f"probability={100 * self.success_probability:.1f}% "
            f"({self.successes}/{self.trials})"
        )


def measure_tts(
    solver_factory: Callable[[int], object],
    target_energy: int,
    trials: int,
    time_limit: float,
    base_seed: int = 0,
) -> TTSResult:
    """Repeat ``solver_factory(seed).solve(...)`` and collect TTS statistics.

    Each trial gets a distinct seed (``base_seed + trial``), matching the
    paper's independent repeated executions.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    result = TTSResult(target_energy=int(target_energy))
    for trial in range(trials):
        seed = base_seed + trial
        solver = solver_factory(seed)
        outcome = solver.solve(target_energy=target_energy, time_limit=time_limit)
        result.records.append(
            TrialRecord(
                seed=seed,
                success=bool(outcome.reached_target),
                time_to_target=outcome.time_to_target,
                best_energy=int(outcome.best_energy),
                elapsed=float(outcome.elapsed),
                rounds=int(getattr(outcome, "rounds", 0)),
            )
        )
    return result
