"""Strategy-frequency accounting for Tables V and VI.

Table V reports, per problem, how often each main search algorithm and
genetic operation was *executed* over 1000 runs; Table VI reports which
strategy *first found* the potentially optimal solution.  Both are simple
aggregations over :class:`~repro.solver.result.SolveResult` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.packet import GeneticOp, MainAlgorithm
from repro.ga.adaptive import SelectionCounters
from repro.harness.reporting import markdown_table
from repro.solver.result import SolveResult

__all__ = ["FrequencyAggregator", "executed_frequencies", "first_found_frequencies"]


def executed_frequencies(results: list[SolveResult]) -> SelectionCounters:
    """Merge the execution counters of several runs (Table V data)."""
    merged = SelectionCounters()
    for result in results:
        merged.merge(result.counters)
    return merged


def first_found_frequencies(results: list[SolveResult]) -> SelectionCounters:
    """Count which strategy first found each run's final best (Table VI data).

    Runs that never improved on the initial state (no ``first_found``) are
    skipped, mirroring the paper's per-success accounting.
    """
    counters = SelectionCounters()
    for result in results:
        if result.first_found is not None:
            alg, op = result.first_found
            counters.record(alg, op)
    return counters


@dataclass
class FrequencyAggregator:
    """Collects per-problem strategy frequencies and renders the tables."""

    executed: dict[str, SelectionCounters] = field(default_factory=dict)
    first_found: dict[str, SelectionCounters] = field(default_factory=dict)

    def add_problem(self, name: str, results: list[SolveResult]) -> None:
        """Fold the runs of one benchmark problem into both tables."""
        self.executed[name] = executed_frequencies(results)
        self.first_found[name] = first_found_frequencies(results)

    @staticmethod
    def _row(name: str, counters: SelectionCounters) -> list[str]:
        algs = counters.algorithm_frequencies()
        ops = counters.operation_frequencies()
        cells = [name]
        cells += [f"{100 * algs[a]:.1f}%" for a in MainAlgorithm]
        cells += [f"{100 * ops[o]:.1f}%" for o in GeneticOp]
        return cells

    def _render(self, data: dict[str, SelectionCounters], title: str) -> str:
        headers = (
            ["Problem"]
            + [a.name for a in MainAlgorithm]
            + [o.name for o in GeneticOp]
        )
        rows = [self._row(name, counters) for name, counters in data.items()]
        return f"{title}\n\n" + markdown_table(headers, rows)

    def table_v(self) -> str:
        """Markdown rendering of Table V (executed frequencies)."""
        return self._render(
            self.executed, "Table V: frequency of executed strategies"
        )

    def table_vi(self) -> str:
        """Markdown rendering of Table VI (first-found frequencies)."""
        return self._render(
            self.first_found,
            "Table VI: frequency of strategies that first find the best solution",
        )
