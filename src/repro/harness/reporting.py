"""Plain-text/markdown rendering helpers for experiment outputs."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ExperimentReport", "format_gap", "markdown_table"]


def markdown_table(headers: list[str], rows: list[list[str]]) -> str:
    """Render a GitHub-flavoured markdown table with aligned columns."""
    if not headers:
        raise ValueError("headers must be non-empty")
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
    cells = [headers] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]

    def line(row):
        return "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |"

    sep = "| " + " | ".join("-" * w for w in widths) + " |"
    return "\n".join([line(cells[0]), sep] + [line(r) for r in cells[1:]])


def format_gap(energy: int | float, reference: int | float) -> str:
    """Relative gap to a reference optimum, in the paper's percent style."""
    if reference == 0:
        return "0%" if energy == 0 else "inf"
    gap = abs(energy - reference) / abs(reference)
    return f"{100 * gap:.3g}%"


@dataclass
class ExperimentReport:
    """A titled markdown table plus free-form notes, one per table/figure.

    ``data`` carries the raw per-instance values for programmatic checks
    (tests assert on it; the rendered table is for humans).
    """

    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    data: dict = field(default_factory=dict)

    def add_row(self, *cells) -> None:
        """Append one table row (cells are stringified)."""
        self.rows.append([str(c) for c in cells])

    def add_note(self, note: str) -> None:
        """Append a free-form note shown under the table."""
        self.notes.append(note)

    def to_markdown(self) -> str:
        """Full report: title, table, notes."""
        parts = [f"## {self.title}", "", markdown_table(self.headers, self.rows)]
        if self.notes:
            parts.append("")
            parts.extend(f"- {note}" for note in self.notes)
        return "\n".join(parts)
