"""Measurement harness: TTS, histograms, frequencies, experiment runners."""

from repro.harness.experiments import (
    FULL,
    SMOKE,
    ExperimentScale,
    establish_reference,
    make_abs,
    make_dabs,
    run_federation_sweep,
    run_fig5,
    run_fig6,
    run_fig7,
    run_service_sweep,
    run_table2,
    run_table3,
    run_table4,
    run_tables5_and_6,
)
from repro.harness.frequency import (
    FrequencyAggregator,
    executed_frequencies,
    first_found_frequencies,
)
from repro.harness.histogram import Histogram
from repro.harness.reporting import ExperimentReport, format_gap, markdown_table
from repro.harness.tts import TrialRecord, TTSResult, measure_tts

__all__ = [
    "ExperimentReport",
    "ExperimentScale",
    "FULL",
    "FrequencyAggregator",
    "Histogram",
    "SMOKE",
    "TTSResult",
    "TrialRecord",
    "establish_reference",
    "executed_frequencies",
    "first_found_frequencies",
    "format_gap",
    "make_abs",
    "make_dabs",
    "markdown_table",
    "measure_tts",
    "run_federation_sweep",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_service_sweep",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_tables5_and_6",
]
