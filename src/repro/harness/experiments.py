"""Per-table/figure experiment runners (paper §VI, scaled).

Each ``run_*`` function regenerates one table or figure of the paper's
evaluation section on *scaled* instances (see DESIGN.md §2: same generator
families, same solver configurations, same statistics — smaller sizes and
trial counts so a pure-Python substrate finishes in bench time).  Every
runner prints its scale in the report notes; nothing is silently capped.

Two presets are provided: :data:`SMOKE` (used by the ``benchmarks/`` suite)
and :data:`FULL` (a longer configuration for manual runs).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.baselines.annealer import QuantumAnnealerSim
from repro.baselines.exact import MipLikeSolver
from repro.baselines.hybrid import HybridSolver
from repro.baselines.sbm import SBMConfig, sbm_solve_qubo
from repro.core.qubo import QUBOModel
from repro.ga.operations import OperationParams
from repro.harness.frequency import FrequencyAggregator
from repro.harness.histogram import Histogram
from repro.harness.reporting import ExperimentReport, format_gap
from repro.harness.tts import TTSResult, measure_tts
from repro.problems.gset import g22_like, g39_like
from repro.problems.maxcut import maxcut_to_qubo, random_complete_graph
from repro.problems.qap import QAPInstance, grid_qap, random_qap
from repro.problems.qasp import QASPInstance, random_qasp
from repro.search.batch import BatchSearchConfig
from repro.solver.abs_solver import ABSSolver
from repro.solver.dabs import DABSConfig, DABSSolver

__all__ = [
    "FULL",
    "SMOKE",
    "ExperimentScale",
    "establish_reference",
    "make_abs",
    "make_dabs",
    "run_federation_sweep",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_service_sweep",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_tables5_and_6",
]


@dataclass(frozen=True)
class ExperimentScale:
    """Scaling knobs shared by all experiment runners."""

    #: MaxCut complete-graph size (paper: 2000)
    maxcut_n: int = 64
    #: Gset-like sparse graph size (paper: 2000)
    gset_n: int = 96
    #: QAP sizes: Taillard-like n, and two grid shapes (paper: 20/30/30)
    qap_tai_n: int = 6
    qap_grid_a: tuple[int, int] = (2, 3)
    qap_grid_b: tuple[int, int] = (2, 4)
    #: Pegasus size for QASP (paper: 16 → 5627 qubits)
    qasp_m: int = 3
    #: DABS topology (paper: 8 GPUs × 216 blocks)
    num_gpus: int = 2
    blocks_per_gpu: int = 8
    pool_capacity: int = 20
    #: flip factors (paper: s=0.1 with b=10 for MaxCut, b=1 for QAP/QASP —
    #: scaled instances use one setting)
    search_flip_factor: float = 0.1
    batch_flip_factor: float = 6.0
    #: repeated executions for TTS measurement (paper: 1000)
    dabs_trials: int = 3
    abs_trials: int = 3
    #: time limits, seconds (paper: ABS 300 s / 30 s, Gurobi 3600 s)
    tts_time_limit: float = 20.0
    abs_time_limit: float = 8.0
    mip_time_limit: float = 0.8
    hybrid_time_limit: float = 0.4
    #: DABS effort rounds used to establish a potentially optimal reference
    reference_rounds: int = 12
    #: figure trial counts
    fig5_trials: int = 10
    fig6_runs: int = 8
    fig6_limits: tuple[float, ...] = (0.1, 0.3, 0.9)
    fig7_trials: int = 6
    #: trials for the Table V/VI frequency runs
    freq_trials: int = 6
    #: execution engine for the DABS/ABS runners ("round", "async",
    #: "async-process"); None defers to REPRO_ENGINE, then "round" — so a
    #: whole experiment suite can be replayed on the async engine by
    #: exporting one variable
    engine: str | None = None
    #: federation sharding for :func:`run_federation_sweep` — island
    #: process count, launches between elite migrations (None disables
    #: migration) and elites published per migration
    islands: int = 2
    migration_period: int | None = 16
    migration_k: int = 4


SMOKE = ExperimentScale()
FULL = ExperimentScale(
    maxcut_n=150,
    gset_n=200,
    qap_tai_n=8,
    qap_grid_a=(2, 4),
    qap_grid_b=(3, 3),
    qasp_m=4,
    num_gpus=4,
    blocks_per_gpu=16,
    pool_capacity=100,
    dabs_trials=10,
    abs_trials=10,
    tts_time_limit=120.0,
    abs_time_limit=40.0,
    mip_time_limit=10.0,
    hybrid_time_limit=5.0,
    reference_rounds=40,
    fig5_trials=30,
    fig6_runs=20,
    fig6_limits=(0.5, 1.5, 4.5),
    fig7_trials=20,
    freq_trials=20,
)


# ---------------------------------------------------------------------------
# Solver factories
# ---------------------------------------------------------------------------

def _dabs_config(scale: ExperimentScale, n: int) -> DABSConfig:
    interval_min = max(2, min(32, n // 4))
    return DABSConfig(
        num_gpus=scale.num_gpus,
        blocks_per_gpu=scale.blocks_per_gpu,
        pool_capacity=scale.pool_capacity,
        batch=BatchSearchConfig(
            search_flip_factor=scale.search_flip_factor,
            batch_flip_factor=scale.batch_flip_factor,
        ),
        operations=OperationParams(interval_min=interval_min),
        engine=scale.engine,
    )


def make_dabs(model: QUBOModel, scale: ExperimentScale, seed: int) -> DABSSolver:
    """A DABS solver configured for *scale*."""
    return DABSSolver(model, _dabs_config(scale, model.n), seed=seed)


def make_abs(model: QUBOModel, scale: ExperimentScale, seed: int) -> ABSSolver:
    """An ABS baseline solver configured for *scale*."""
    return ABSSolver(model, _dabs_config(scale, model.n), seed=seed)


def establish_reference(
    model: QUBOModel, scale: ExperimentScale, seed: int = 0
) -> tuple[int, str]:
    """Potentially optimal reference energy (§VI's circumstantial protocol).

    A DABS effort run plus an independent MIP-like run; the better result is
    the reference.  Callers on tiny models should prefer exact optima.
    """
    effort = make_dabs(model, scale, seed=seed).solve(
        max_rounds=scale.reference_rounds
    )
    mip = MipLikeSolver(time_limit=scale.mip_time_limit, seed=seed).solve(model)
    if mip.proved_optimal and mip.best_energy <= effort.best_energy:
        return int(mip.best_energy), "optimal (proved)"
    return int(min(effort.best_energy, mip.best_energy)), "potentially optimal"


def _tts_cells(result: TTSResult) -> tuple[str, str]:
    if result.mean_tts is not None:
        tts = f"{result.mean_tts:.2f}s/{result.mean_rounds:.1f}r"
    else:
        tts = "n/a"
    prob = f"{100 * result.success_probability:.0f}%"
    return tts, prob


# ---------------------------------------------------------------------------
# Table II — MaxCut
# ---------------------------------------------------------------------------

def table2_instances(scale: ExperimentScale, seed: int = 0):
    """The three MaxCut benchmark families at the current scale."""
    k = random_complete_graph(scale.maxcut_n, seed=seed)
    g22 = g22_like(scale.gset_n, seed=seed + 1)
    g39 = g39_like(scale.gset_n, seed=seed + 2)
    return [
        (f"K{scale.maxcut_n}", maxcut_to_qubo(k, name=f"K{scale.maxcut_n}")),
        (f"G22-like({scale.gset_n})", maxcut_to_qubo(g22, name="g22-like")),
        (f"G39-like({scale.gset_n})", maxcut_to_qubo(g39, name="g39-like")),
    ]


def run_table2(scale: ExperimentScale = SMOKE, seed: int = 0) -> ExperimentReport:
    """Table II: MaxCut — DABS vs ABS vs MIP-like vs Hybrid vs SBM."""
    report = ExperimentReport(
        title="Table II (scaled): MaxCut",
        headers=["Instance", "Solver", "Energy", "Metric"],
    )
    report.add_note(
        f"scaled instances: n={scale.maxcut_n}/{scale.gset_n} "
        f"(paper: 2000); {scale.dabs_trials} trials (paper: 1000)"
    )
    for name, model in table2_instances(scale, seed):
        ref, provenance = establish_reference(model, scale, seed=seed)
        report.add_row(name, f"reference ({provenance})", ref, f"cut={-ref}")
        dabs = measure_tts(
            lambda s: make_dabs(model, scale, s),
            ref,
            scale.dabs_trials,
            scale.tts_time_limit,
            base_seed=seed + 100,
        )
        report.add_row(
            name, "DABS", dabs.best_energy,
            "TTS={} prob={}".format(*_tts_cells(dabs)),
        )
        abs_res = measure_tts(
            lambda s: make_abs(model, scale, s),
            ref,
            scale.abs_trials,
            scale.abs_time_limit,
            base_seed=seed + 200,
        )
        report.add_row(
            name, "ABS", abs_res.best_energy,
            "TTS={} prob={}".format(*_tts_cells(abs_res)),
        )
        mip = MipLikeSolver(time_limit=scale.mip_time_limit, seed=seed).solve(model)
        report.add_row(
            name, "MIP-like (Gurobi sub)", mip.best_energy,
            f"gap={format_gap(mip.best_energy, ref)}",
        )
        hybrid = HybridSolver(seed=seed).sample(model, scale.hybrid_time_limit)
        report.add_row(
            name, "Hybrid (D-Wave sub)", hybrid.energy,
            f"gap={format_gap(hybrid.energy, ref)}",
        )
        _, sbm_energy = sbm_solve_qubo(
            model, SBMConfig(variant="discrete", steps=400, num_replicas=16),
            seed=seed,
        )
        report.add_row(
            name, "dSB (CIM-class sub)", sbm_energy,
            f"gap={format_gap(sbm_energy, ref)}",
        )
        report.data[name] = {
            "reference": ref,
            "dabs": dabs,
            "abs": abs_res,
            "mip": mip.best_energy,
            "hybrid": hybrid.energy,
            "sbm": sbm_energy,
        }
    return report


# ---------------------------------------------------------------------------
# Service sweeps — trials as one multi-tenant job batch
# ---------------------------------------------------------------------------

def run_service_sweep(
    scale: ExperimentScale = SMOKE, seed: int = 0, rounds: int | None = None
) -> ExperimentReport:
    """Run the Table II instance family as one service job batch.

    Instead of one sequential ``solve()`` per (instance, trial), every
    trial is submitted as an independent job to a single
    :class:`~repro.service.SolveService` over a shared fleet — the
    paper's deployment model, and the in-process client the serving
    layer is built around.  Repeat trials of the same instance hit the
    prepared-problem cache; the report records per-instance bests plus
    the batch's aggregate throughput and cache counters.
    """
    import time

    from repro.service import SolveService

    rounds = rounds if rounds is not None else scale.reference_rounds
    instances = table2_instances(scale, seed)
    report = ExperimentReport(
        title="Service sweep: Table II instances as one job batch",
        headers=["Instance", "Trials", "Best", "Mean rounds", "Launches"],
    )
    start = time.perf_counter()
    with SolveService(devices=scale.num_gpus) as service:
        handles = {
            name: [
                service.submit(
                    model,
                    config=_dabs_config(scale, model.n),
                    seed=seed + 100 + trial,
                    max_rounds=rounds,
                )
                for trial in range(scale.dabs_trials)
            ]
            for name, model in instances
        }
        results = {
            name: [handle.result() for handle in batch]
            for name, batch in handles.items()
        }
        cache = service.stats()["cache"]
    elapsed = time.perf_counter() - start
    total_launches = 0
    for name, _ in instances:
        trials = results[name]
        total_launches += sum(r.launches for r in trials)
        report.add_row(
            name,
            len(trials),
            min(r.best_energy for r in trials),
            f"{np.mean([r.rounds for r in trials]):.1f}",
            sum(r.launches for r in trials),
        )
        report.data[name] = trials
    report.data["cache"] = cache
    report.data["elapsed"] = elapsed
    report.add_note(
        f"{scale.dabs_trials} trials/instance over {scale.num_gpus} shared "
        f"lanes: {total_launches} launches in {elapsed:.2f}s "
        f"({total_launches / elapsed:.0f}/s); prepared-problem cache "
        f"hits={cache['hits']} misses={cache['misses']}"
    )
    return report


def run_federation_sweep(
    scale: ExperimentScale = SMOKE, seed: int = 0, launches: int | None = None
) -> ExperimentReport:
    """Run the Table II instance family through an island federation.

    The federated twin of :func:`run_service_sweep`: every trial fans out
    over ``scale.islands`` island processes with periodic elite migration
    (``scale.migration_period`` / ``scale.migration_k``), so the sweep
    exercises the full process-sharding path — per-island RNG streams,
    the migration epochs and the merged results — at experiment scale.
    """
    import time

    from repro.federation import Federation

    launches = (
        launches
        if launches is not None
        else scale.reference_rounds * scale.num_gpus * scale.islands
    )
    instances = table2_instances(scale, seed)
    report = ExperimentReport(
        title="Federation sweep: Table II instances over island processes",
        headers=["Instance", "Trials", "Best", "Launches", "Migrants"],
    )
    start = time.perf_counter()
    with Federation(
        scale.islands,
        migration_period=scale.migration_period,
        migration_k=scale.migration_k,
        default_config=DABSConfig(
            num_gpus=scale.num_gpus,
            blocks_per_gpu=scale.blocks_per_gpu,
            pool_capacity=scale.pool_capacity,
        ),
        seed=seed,
    ) as federation:
        handles = {
            name: [
                federation.submit(
                    model,
                    config=_dabs_config(scale, model.n),
                    seed=seed + 100 + trial,
                    max_launches=launches,
                )
                for trial in range(scale.dabs_trials)
            ]
            for name, model in instances
        }
        results = {
            name: [handle.result() for handle in batch]
            for name, batch in handles.items()
        }
        migrants = {
            name: sum(
                rep["migrants_in"]
                for handle in batch
                for rep in handle.island_reports()
            )
            for name, batch in handles.items()
        }
    elapsed = time.perf_counter() - start
    total_launches = 0
    for name, _ in instances:
        trials = results[name]
        total_launches += sum(r.launches for r in trials)
        report.add_row(
            name,
            len(trials),
            min(r.best_energy for r in trials),
            sum(r.launches for r in trials),
            migrants[name],
        )
        report.data[name] = trials
    report.data["elapsed"] = elapsed
    report.add_note(
        f"{scale.dabs_trials} trials/instance over {scale.islands} islands "
        f"x {scale.num_gpus} lanes (migration every "
        f"{scale.migration_period} launches, k={scale.migration_k}): "
        f"{total_launches} launches in {elapsed:.2f}s "
        f"({total_launches / elapsed:.0f}/s aggregate)"
    )
    return report


# ---------------------------------------------------------------------------
# Table III — QAP
# ---------------------------------------------------------------------------

def table3_instances(scale: ExperimentScale, seed: int = 0):
    """Three QAPLIB-family instances at the current scale."""
    return [
        random_qap(scale.qap_tai_n, seed=seed),
        grid_qap(*scale.qap_grid_a, seed=seed + 1),
        grid_qap(*scale.qap_grid_b, seed=seed + 2),
    ]


def run_table3(scale: ExperimentScale = SMOKE, seed: int = 0) -> ExperimentReport:
    """Table III: QAP — exact optima, DABS/ABS TTS, MIP/Hybrid gaps."""
    report = ExperimentReport(
        title="Table III (scaled): QAP",
        headers=["Instance", "Solver", "Energy", "Metric"],
    )
    report.add_note(
        "scaled instances: n=6–8 facilities (paper: 20–30); optima proved "
        "by exhaustive permutation search"
    )
    for inst in table3_instances(scale, seed):
        model, p = inst.to_qubo()
        _, opt_cost = inst.brute_force()
        ref = opt_cost - inst.n * p
        report.add_row(
            inst.name, "QAP optimum (proved)", ref,
            f"cost={opt_cost} penalty={p}",
        )
        dabs = measure_tts(
            lambda s: make_dabs(model, scale, s),
            ref,
            scale.dabs_trials,
            scale.tts_time_limit,
            base_seed=seed + 100,
        )
        report.add_row(
            inst.name, "DABS", dabs.best_energy,
            "TTS={} prob={}".format(*_tts_cells(dabs)),
        )
        abs_res = measure_tts(
            lambda s: make_abs(model, scale, s),
            ref,
            scale.abs_trials,
            scale.abs_time_limit,
            base_seed=seed + 200,
        )
        report.add_row(
            inst.name, "ABS", abs_res.best_energy,
            "TTS={} prob={}".format(*_tts_cells(abs_res)),
        )
        mip = MipLikeSolver(time_limit=scale.mip_time_limit, seed=seed).solve(model)
        report.add_row(
            inst.name, "MIP-like (Gurobi sub)", mip.best_energy,
            f"gap={format_gap(mip.best_energy, ref)}",
        )
        hybrid = HybridSolver(seed=seed).sample(model, scale.hybrid_time_limit)
        report.add_row(
            inst.name, "Hybrid (D-Wave sub)", hybrid.energy,
            f"gap={format_gap(hybrid.energy, ref)}",
        )
        report.data[inst.name] = {
            "reference": ref,
            "optimal_cost": opt_cost,
            "penalty": p,
            "dabs": dabs,
            "abs": abs_res,
            "mip": mip.best_energy,
            "hybrid": hybrid.energy,
        }
    return report


# ---------------------------------------------------------------------------
# Table IV — QASP
# ---------------------------------------------------------------------------

def table4_instances(scale: ExperimentScale, seed: int = 0) -> list[QASPInstance]:
    """QASP instances at resolutions 1, 16, 256 (paper §VI.C)."""
    return [
        random_qasp(resolution=r, m=scale.qasp_m, seed=seed + i)
        for i, r in enumerate((1, 16, 256))
    ]


def run_table4(scale: ExperimentScale = SMOKE, seed: int = 0) -> ExperimentReport:
    """Table IV: QASP — DABS/ABS TTS, MIP gap, quantum annealer gap."""
    report = ExperimentReport(
        title="Table IV (scaled): QASP",
        headers=["Instance", "Solver", "Energy", "Metric"],
    )
    for inst in table4_instances(scale, seed):
        name = f"QASP{inst.resolution} (n={inst.n})"
        model = inst.qubo
        ref, provenance = establish_reference(model, scale, seed=seed)
        report.add_row(
            name, f"reference ({provenance})", ref,
            f"H={inst.hamiltonian_of_energy(ref)}",
        )
        dabs = measure_tts(
            lambda s: make_dabs(model, scale, s),
            ref,
            scale.dabs_trials,
            scale.tts_time_limit,
            base_seed=seed + 100,
        )
        report.add_row(
            name, "DABS", dabs.best_energy,
            "TTS={} prob={}".format(*_tts_cells(dabs)),
        )
        abs_res = measure_tts(
            lambda s: make_abs(model, scale, s),
            ref,
            scale.abs_trials,
            scale.abs_time_limit,
            base_seed=seed + 200,
        )
        report.add_row(
            name, "ABS", abs_res.best_energy,
            "TTS={} prob={}".format(*_tts_cells(abs_res)),
        )
        mip = MipLikeSolver(time_limit=scale.mip_time_limit, seed=seed).solve(model)
        report.add_row(
            name, "MIP-like (Gurobi sub)", mip.best_energy,
            f"gap={format_gap(mip.best_energy, ref)}",
        )
        annealer = QuantumAnnealerSim(inst.ising, inst.resolution, seed=seed)
        best_h, model_time = annealer.best_of_calls(num_calls=2, reads_per_call=500)
        annealer_energy = best_h + inst.offset
        report.add_row(
            name, "Annealer sim (Advantage sub)", annealer_energy,
            f"gap={format_gap(annealer_energy, ref)} "
            f"(model time {model_time:.1f}s)",
        )
        report.data[name] = {
            "reference": ref,
            "dabs": dabs,
            "abs": abs_res,
            "mip": mip.best_energy,
            "annealer": annealer_energy,
        }
    report.add_note(
        f"Pegasus P{scale.qasp_m} working graph (paper: P16, 5627 qubits); "
        "annealer model time uses the paper's 2.7 s/call + 20 µs/read accounting"
    )
    return report


# ---------------------------------------------------------------------------
# Tables V & VI — strategy frequencies
# ---------------------------------------------------------------------------

def run_tables5_and_6(
    scale: ExperimentScale = SMOKE, seed: int = 0
) -> tuple[ExperimentReport, ExperimentReport]:
    """Tables V/VI: executed vs first-found strategy frequencies."""
    problems: list[tuple[str, QUBOModel]] = []
    k = random_complete_graph(scale.maxcut_n, seed=seed)
    problems.append((f"K{scale.maxcut_n}", maxcut_to_qubo(k)))
    inst = random_qap(scale.qap_tai_n, seed=seed + 1)
    problems.append((inst.name, inst.to_qubo()[0]))
    qasp = random_qasp(resolution=1, m=scale.qasp_m, seed=seed + 2)
    problems.append((f"QASP1 (n={qasp.n})", qasp.qubo))

    aggregator = FrequencyAggregator()
    for name, model in problems:
        ref, _ = establish_reference(model, scale, seed=seed)
        results = []
        for trial in range(scale.freq_trials):
            solver = make_dabs(model, scale, seed=seed + 300 + trial)
            results.append(
                solver.solve(target_energy=ref, time_limit=scale.tts_time_limit)
            )
        aggregator.add_problem(name, results)

    def to_report(
        data: dict, title: str
    ) -> ExperimentReport:
        from repro.core.packet import GeneticOp, MainAlgorithm

        report = ExperimentReport(
            title=title,
            headers=["Problem"]
            + [a.name for a in MainAlgorithm]
            + [o.name for o in GeneticOp],
        )
        for name, counters in data.items():
            algs = counters.algorithm_frequencies()
            ops = counters.operation_frequencies()
            report.add_row(
                name,
                *[f"{100 * algs[a]:.1f}%" for a in MainAlgorithm],
                *[f"{100 * ops[o]:.1f}%" for o in GeneticOp],
            )
            report.data[name] = counters
        return report

    table5 = to_report(
        aggregator.executed, "Table V (scaled): executed strategy frequencies"
    )
    table6 = to_report(
        aggregator.first_found,
        "Table VI (scaled): first-found strategy frequencies",
    )
    return table5, table6


# ---------------------------------------------------------------------------
# Figures 5, 6, 7 — histograms
# ---------------------------------------------------------------------------

def run_fig5(scale: ExperimentScale = SMOKE, seed: int = 0) -> ExperimentReport:
    """Fig. 5: histogram of DABS TTS on the complete-graph MaxCut."""
    adj = random_complete_graph(scale.maxcut_n, seed=seed)
    model = maxcut_to_qubo(adj)
    ref, provenance = establish_reference(model, scale, seed=seed)
    tts = measure_tts(
        lambda s: make_dabs(model, scale, s),
        ref,
        scale.fig5_trials,
        scale.tts_time_limit,
        base_seed=seed + 100,
    )
    values = tts.tts_values
    report = ExperimentReport(
        title="Fig. 5 (scaled): DABS TTS histogram, complete-graph MaxCut",
        headers=["TTS bin (s)", "Executions"],
    )
    if values.size:
        width = max(0.05, float(np.ceil(values.max() / 8 * 20) / 20))
        hist = Histogram.from_values(values, bin_width=width, start=0.0)
        for label, count in hist.to_rows():
            report.add_row(label, count)
        report.data["histogram"] = hist
    report.data["tts"] = tts
    report.add_note(
        f"{scale.fig5_trials} executions (paper: 1000), reference={ref} "
        f"({provenance}), success={100 * tts.success_probability:.0f}%"
    )
    return report


def run_fig6(scale: ExperimentScale = SMOKE, seed: int = 0) -> ExperimentReport:
    """Fig. 6: hybrid-solver solution histograms at three time limits."""
    adj = random_complete_graph(scale.maxcut_n, seed=seed)
    model = maxcut_to_qubo(adj)
    ref, _ = establish_reference(model, scale, seed=seed)
    report = ExperimentReport(
        title="Fig. 6 (scaled): Hybrid-solver solutions vs time limit",
        headers=["Time limit", "Best", "Worst", "Hit reference", "Runs"],
    )
    energies_by_limit: dict[float, np.ndarray] = {}
    for limit in scale.fig6_limits:
        energies = np.array(
            [
                HybridSolver(seed=seed + 10 * run).sample(model, limit).energy
                for run in range(scale.fig6_runs)
            ]
        )
        energies_by_limit[limit] = energies
        report.add_row(
            f"T={limit:g}s",
            int(energies.min()),
            int(energies.max()),
            f"{int((energies <= ref).sum())}/{scale.fig6_runs}",
            scale.fig6_runs,
        )
    report.data["reference"] = ref
    report.data["energies"] = energies_by_limit
    report.add_note(
        "longer limits must shift mass toward the reference — the paper's "
        "TTS-estimation methodology for an API without TTS support"
    )
    return report


def run_fig7(scale: ExperimentScale = SMOKE, seed: int = 0) -> ExperimentReport:
    """Fig. 7: DABS running-time histograms for the three QASPs."""
    report = ExperimentReport(
        title="Fig. 7 (scaled): DABS TTS histograms, QASP r=1/16/256",
        headers=["Instance", "TTS bin (s)", "Executions"],
    )
    for inst in table4_instances(scale, seed):
        name = f"QASP{inst.resolution}"
        ref, _ = establish_reference(inst.qubo, scale, seed=seed)
        tts = measure_tts(
            lambda s: make_dabs(inst.qubo, scale, s),
            ref,
            scale.fig7_trials,
            scale.tts_time_limit,
            base_seed=seed + 100,
        )
        values = tts.tts_values
        if values.size:
            width = max(0.05, float(np.ceil(values.max() / 8 * 20) / 20))
            hist = Histogram.from_values(values, bin_width=width, start=0.0)
            for label, count in hist.to_rows():
                report.add_row(name, label, count)
            report.data[name] = {"histogram": hist, "tts": tts}
        else:  # pragma: no cover - only under extreme time pressure
            report.add_row(name, "no successes", 0)
            report.data[name] = {"histogram": None, "tts": tts}
    report.add_note(
        f"{scale.fig7_trials} executions per resolution (paper: 1000)"
    )
    return report
