"""Fault tolerance for the execution stack (DESIGN.md §11).

Three pieces:

* :class:`RetryPolicy` — declarative recovery knobs (per-launch retries
  with capped exponential backoff, a per-job failure budget, a hang
  deadline) that ``DABSConfig.retry_policy`` / ``SolveService`` hand to
  the worker groups;
* :class:`FailureReport` — the structured record a job fails with once
  recovery is exhausted;
* :mod:`repro.resilience.chaos` — deterministic, seed-driven fault
  injection behind env/config flags, powering ``tests/resilience`` and
  the CI chaos job.
"""

from repro.resilience.chaos import ChaosConfig, ChaosError, ChaosInjector
from repro.resilience.policy import FailureReport, RetryPolicy

__all__ = [
    "ChaosConfig",
    "ChaosError",
    "ChaosInjector",
    "FailureReport",
    "RetryPolicy",
]
