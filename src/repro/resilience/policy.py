"""Retry policy and structured failure reports (DESIGN.md §11).

One :class:`RetryPolicy` travels from ``DABSConfig.retry_policy`` (or the
``SolveService`` constructor) down into the worker groups, where it
governs every recovery decision the execution layer makes:

* how many times one launch is re-issued after a worker fault
  (``max_retries``), with capped exponential backoff between attempts;
* how many faults one job absorbs in total before it is failed in
  isolation (``failure_budget``) — the circuit breaker that stops a
  poisoned instance from burning the fleet forever;
* how long a launch may run before it is declared hung and its lane is
  respawned (``launch_timeout``) — hang detection, not just crash
  detection — and how long the thread fleet's reaper then waits for the
  abandoned lane thread before failing the launch it still owns
  (``hang_grace``; process workers are simply killed instead).

When recovery is exhausted the failure surfaces as a
:class:`~repro.engine.workers.WorkerError` carrying a
:class:`FailureReport` — the structured record (attempt count, every
traceback, fatality) client code and the ``repro serve`` ``failed``
event report from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FailureReport", "RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How the execution layer retries faults before giving up."""

    #: times one launch is re-issued after a fault (0 disables retry)
    max_retries: int = 2
    #: backoff before re-issue attempt k: ``base * factor**(k-1)`` seconds
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    #: ceiling on any single backoff delay, seconds
    backoff_cap: float = 1.0
    #: total worker faults one job absorbs before it fails in isolation;
    #: None means only ``max_retries`` bounds recovery
    failure_budget: int | None = 8
    #: seconds a launch may run before its lane is declared hung and
    #: respawned; None disables hang detection
    launch_timeout: float | None = None
    #: seconds the quarantine reaper then waits for the abandoned lane
    #: thread to exit before declaring its launch unrecoverable (thread
    #: workers cannot be killed, only awaited — a late exit within the
    #: grace delivers or retries the launch safely); None waits one more
    #: ``launch_timeout``
    hang_grace: float | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.backoff_cap < 0:
            raise ValueError("backoff_cap must be >= 0")
        if self.failure_budget is not None and self.failure_budget < 1:
            raise ValueError("failure_budget must be >= 1 or None")
        if self.launch_timeout is not None and self.launch_timeout <= 0:
            raise ValueError("launch_timeout must be > 0 or None")
        if self.hang_grace is not None and self.hang_grace <= 0:
            raise ValueError("hang_grace must be > 0 or None")

    def delay(self, attempt: int) -> float:
        """Backoff before re-issue *attempt* (1-based), capped."""
        if attempt < 1:
            return 0.0
        return min(
            self.backoff_cap,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )


@dataclass
class FailureReport:
    """Structured record of one exhausted recovery path.

    Attached to the :class:`~repro.engine.workers.WorkerError` that fails
    a job after its retry budget runs out, and serialized (via
    :meth:`to_dict`) onto the ``repro serve`` ``failed`` event.
    """

    #: what failed: "launch", "worker", "hang", "island", "backend"
    kind: str
    #: device index of the failing worker (None when not device-bound)
    device_id: int | None = None
    #: attempts made (first try included)
    attempts: int = 1
    #: re-issues performed before giving up
    retries: int = 0
    #: True when recovery is exhausted and the job failed
    fatal: bool = True
    #: the traceback (or reason) of every failed attempt, oldest first
    details: tuple[str, ...] = field(default_factory=tuple)

    def summary(self) -> str:
        last = self.details[-1].strip().splitlines()[-1] if self.details else ""
        where = "" if self.device_id is None else f" on device {self.device_id}"
        return (
            f"{self.kind} failure{where} after {self.attempts} attempt(s)"
            + (f": {last}" if last else "")
        )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "device_id": self.device_id,
            "attempts": self.attempts,
            "retries": self.retries,
            "fatal": self.fatal,
            "details": list(self.details),
        }
