"""Deterministic fault injection for the execution stack (DESIGN.md §11).

Every recovery path this package adds (lane respawn, launch retry, island
redistribution, backend fallback, dead-peer drops) is provable only if
faults can be produced on demand, reproducibly.  This module is that
harness: a process-global :class:`ChaosInjector` that the execution
layers consult at fixed *sites*::

    worker_kill       a worker lane/process dies mid-launch
    launch_exception  a launch raises before running
    backend_raise     a compute backend fails inside VirtualGPU.launch
    transport_drop    a migration send is silently lost
    transport_delay   a migration send is delayed by ``delay`` seconds
    island_kill       a federation island process exits mid-job

Decisions are pure functions of ``(seed, site, call-count)`` via a
splitmix64 hash — the same seed replays the same fault schedule at every
site, in every process (children inherit the injector across ``fork``
and, independently, re-read the environment).  ``max_faults`` bounds the
total fires so a chaos run always terminates, and ``target`` restricts
site fires to one worker/island id, which is how a test kills exactly
island 2 of 4 deterministically.

Enabled two ways:

* programmatically — ``chaos.install(ChaosConfig(seed=1, rates={...}))``
  (tests; ``install(None)`` disables);
* environment — ``REPRO_CHAOS="worker_kill=0.1,launch_exception=0.05"``
  plus optional ``REPRO_CHAOS_SEED`` / ``REPRO_CHAOS_TARGET`` /
  ``REPRO_CHAOS_MAX_FAULTS`` (the CI chaos job's knobs).

When no injector is installed, :func:`fire` is a None-check — the hot
paths pay nothing.
"""

from __future__ import annotations

import os
import threading
import zlib
from dataclasses import dataclass, field

__all__ = [
    "ChaosConfig",
    "ChaosError",
    "ChaosInjector",
    "SITES",
    "active",
    "config_from_env",
    "delay_seconds",
    "fire",
    "install",
]

#: the injection sites the execution layers consult
SITES = (
    "worker_kill",
    "launch_exception",
    "backend_raise",
    "transport_drop",
    "transport_delay",
    "island_kill",
)

#: environment variables the env path reads
ENV_SPEC = "REPRO_CHAOS"
ENV_SEED = "REPRO_CHAOS_SEED"
ENV_TARGET = "REPRO_CHAOS_TARGET"
ENV_MAX_FAULTS = "REPRO_CHAOS_MAX_FAULTS"


class ChaosError(RuntimeError):
    """An injected fault (never raised outside chaos runs)."""


@dataclass(frozen=True)
class ChaosConfig:
    """Which faults to inject, how often, and the deterministic seed."""

    #: site name -> fire probability in [0, 1]
    rates: dict = field(default_factory=dict)
    #: seed of the per-site decision streams
    seed: int = 0
    #: total fires across all sites before the injector goes quiet;
    #: None means unbounded
    max_faults: int | None = None
    #: restrict fires to this worker/island id (None: any)
    target: int | None = None
    #: seconds a ``transport_delay`` fire sleeps
    delay: float = 0.02

    def __post_init__(self) -> None:
        for site, rate in self.rates.items():
            if site not in SITES:
                raise ValueError(
                    f"unknown chaos site {site!r} (known: {', '.join(SITES)})"
                )
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"chaos rate for {site!r} must be in [0, 1]")
        if self.max_faults is not None and self.max_faults < 1:
            raise ValueError("max_faults must be >= 1 or None")
        if self.delay < 0:
            raise ValueError("delay must be >= 0")


def _splitmix64(x: int) -> int:
    """One splitmix64 output step (the decision hash)."""
    x = (x + 0x9E3779B97F4A7C15) % 2**64
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) % 2**64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) % 2**64
    return z ^ (z >> 31)


class ChaosInjector:
    """Seed-driven fault decisions, one deterministic stream per site."""

    def __init__(self, config: ChaosConfig) -> None:
        self.config = config
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self.fired = 0

    def fire(self, site: str, who: int | None = None) -> bool:
        """True when the fault at *site* should fire this call.

        *who* is the consulting worker/island id; when the config names a
        ``target``, only that id's calls can fire.  Each (seed, site)
        pair is an independent deterministic decision stream indexed by
        the site's call count.
        """
        rate = self.config.rates.get(site, 0.0)
        if rate <= 0.0:
            return False
        target = self.config.target
        if target is not None and who is not None and who != target:
            return False
        with self._lock:
            if (
                self.config.max_faults is not None
                and self.fired >= self.config.max_faults
            ):
                return False
            count = self._counts.get(site, 0)
            self._counts[site] = count + 1
            # crc32, not hash(): Python's str hash is salted per process
            # (PYTHONHASHSEED), which would break replaying a CI seed in
            # a fresh local run
            key = (
                self.config.seed * 0x100000001B3
                + zlib.crc32(site.encode()) * 0x10001
                + count
            ) % 2**64
            draw = _splitmix64(key) / 2**64
            if draw >= rate:
                return False
            self.fired += 1
            return True


#: the process-global injector; children inherit it across fork
_injector: ChaosInjector | None = None
_env_checked = False


def install(config: ChaosConfig | None) -> None:
    """Install (or, with None, remove) the process-global injector."""
    global _injector, _env_checked
    _injector = ChaosInjector(config) if config is not None else None
    _env_checked = True  # explicit install overrides the env path


def config_from_env(environ=None) -> ChaosConfig | None:
    """Parse ``REPRO_CHAOS`` (+ seed/target/cap vars); None when unset.

    The spec is ``site=rate`` pairs joined by commas, e.g.
    ``worker_kill=0.1,launch_exception=0.05``.  Raises ``ValueError`` on
    a malformed spec — the CLI validates eagerly at startup.
    """
    env = os.environ if environ is None else environ
    spec = env.get(ENV_SPEC, "").strip()
    if not spec or spec.lower() in ("0", "off", "none"):
        return None
    rates = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        site, _, rate = part.partition("=")
        try:
            rates[site.strip()] = float(rate) if rate else 1.0
        except ValueError:
            raise ValueError(
                f"bad rate in {part!r} (want site=rate)"
            ) from None
    seed = int(env.get(ENV_SEED, "0") or "0")
    target_raw = env.get(ENV_TARGET, "").strip()
    target = int(target_raw) if target_raw else None
    cap_raw = env.get(ENV_MAX_FAULTS, "").strip()
    max_faults = int(cap_raw) if cap_raw else None
    return ChaosConfig(
        rates=rates, seed=seed, target=target, max_faults=max_faults
    )


def active() -> ChaosInjector | None:
    """The installed injector, lazily initialized from the environment."""
    global _injector, _env_checked
    if not _env_checked:
        _env_checked = True
        config = config_from_env()
        if config is not None:
            _injector = ChaosInjector(config)
    return _injector


def fire(site: str, who: int | None = None) -> bool:
    """Module-level shortcut: False when no injector is installed."""
    injector = active()
    if injector is None:
        return False
    return injector.fire(site, who)


def delay_seconds() -> float:
    """The configured ``transport_delay`` sleep (0 when chaos is off)."""
    injector = active()
    return injector.config.delay if injector is not None else 0.0


def reset() -> None:
    """Test helper: drop the injector and re-arm the env check."""
    global _injector, _env_checked
    _injector = None
    _env_checked = False
