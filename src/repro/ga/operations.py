"""Genetic operations (§IV.A): how target solution vectors are produced.

Each operation maps zero, one or two rank-selected parents from a solution
pool to a new target vector:

* ``Mutation``     — flip each bit of one parent with small probability p.
* ``Crossover``    — per-bit random mix of two parents from the same pool.
* ``Xrossover``    — crossover of one parent from this pool and one from the
  ring-neighbour pool (§IV.B, the island-model search-space bridge).
* ``Zero`` / ``One`` — write 0 (resp. 1) to each bit with probability p.
* ``IntervalZero`` — zero out one random cyclic segment of random length.
* ``Best``         — the pool's best vector as-is.
* ``Random``       — a fresh uniform random vector (pool-independent).

All operations draw from the host Mersenne-twister generator; the device
xorshift lanes are never involved in target generation, matching the paper's
host/device split.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.packet import GeneticOp
from repro.ga.pool import SolutionPool
from repro.utils.validation import check_probability

__all__ = ["OperationParams", "TargetGenerator"]


@dataclass(frozen=True)
class OperationParams:
    """Probabilities/sizes of the stochastic operations (paper defaults)."""

    #: per-bit flip probability of Mutation (paper: "say 1/8")
    mutation_p: float = 0.125
    #: per-bit write probability of Zero and One
    zero_p: float = 0.125
    one_p: float = 0.125
    #: minimum cyclic segment length of IntervalZero (paper: 32)
    interval_min: int = 32

    def __post_init__(self) -> None:
        check_probability(self.mutation_p, "mutation_p")
        check_probability(self.zero_p, "zero_p")
        check_probability(self.one_p, "one_p")
        if self.interval_min < 1:
            raise ValueError("interval_min must be >= 1")


class TargetGenerator:
    """Applies genetic operations to pools to produce target vectors."""

    def __init__(self, n: int, params: OperationParams | None = None) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.n = n
        self.params = params or OperationParams()

    # -- individual operations ------------------------------------------------
    def mutation(self, parent: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Flip each bit with probability ``mutation_p``."""
        flips = rng.random(self.n) < self.params.mutation_p
        return parent ^ flips.astype(np.uint8)

    def crossover(
        self, a: np.ndarray, b: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-bit uniform mix of two parents."""
        take_b = rng.random(self.n) < 0.5
        return np.where(take_b, b, a).astype(np.uint8)

    def zero(self, parent: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Write 0 to each bit with probability ``zero_p``."""
        mask = rng.random(self.n) < self.params.zero_p
        out = parent.copy()
        out[mask] = 0
        return out

    def one(self, parent: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Write 1 to each bit with probability ``one_p``."""
        mask = rng.random(self.n) < self.params.one_p
        out = parent.copy()
        out[mask] = 1
        return out

    def interval_zero(self, parent: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Zero out a random cyclic segment of length in [interval_min, n/2].

        The segment wraps around, consistent with the cyclic bit layout used
        by CyclicMin.
        """
        lo = min(self.params.interval_min, max(1, self.n // 2))
        hi = max(lo, self.n // 2)
        length = int(rng.integers(lo, hi + 1))
        start = int(rng.integers(self.n))
        out = parent.copy()
        positions = (start + np.arange(length)) % self.n
        out[positions] = 0
        return out

    def random_vector(self, rng: np.random.Generator) -> np.ndarray:
        """Fresh uniform random vector."""
        return rng.integers(0, 2, size=self.n, dtype=np.uint8)

    # -- dispatch ---------------------------------------------------------------
    def generate(
        self,
        op: GeneticOp,
        pool: SolutionPool,
        neighbor_pool: SolutionPool | None,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Produce a target vector with operation *op*.

        ``neighbor_pool`` is required for Xrossover; passing None degrades
        Xrossover to an in-pool Crossover (single-pool configurations).
        """
        if op == GeneticOp.MUTATION:
            return self.mutation(pool.select_vector(rng), rng)
        if op == GeneticOp.CROSSOVER:
            return self.crossover(
                pool.select_vector(rng), pool.select_vector(rng), rng
            )
        if op == GeneticOp.XROSSOVER:
            other = neighbor_pool if neighbor_pool is not None else pool
            return self.crossover(
                pool.select_vector(rng), other.select_vector(rng), rng
            )
        if op == GeneticOp.ZERO:
            return self.zero(pool.select_vector(rng), rng)
        if op == GeneticOp.ONE:
            return self.one(pool.select_vector(rng), rng)
        if op == GeneticOp.INTERVALZERO:
            return self.interval_zero(pool.select_vector(rng), rng)
        if op == GeneticOp.BEST:
            return pool.vectors[0].copy()
        if op == GeneticOp.RANDOM:
            return self.random_vector(rng)
        raise ValueError(f"unknown genetic operation: {op!r}")
