"""Genetic operations (§IV.A): how target solution vectors are produced.

Each operation maps zero, one or two rank-selected parents from a solution
pool to a new target vector:

* ``Mutation``     — flip each bit of one parent with small probability p.
* ``Crossover``    — per-bit random mix of two parents from the same pool.
* ``Xrossover``    — crossover of one parent from this pool and one from the
  ring-neighbour pool (§IV.B, the island-model search-space bridge).
* ``Zero`` / ``One`` — write 0 (resp. 1) to each bit with probability p.
* ``IntervalZero`` — zero out one random cyclic segment of random length.
* ``Best``         — the pool's best vector as-is.
* ``Random``       — a fresh uniform random vector (pool-independent).

All operations draw from the host Mersenne-twister generator; the device
xorshift lanes are never involved in target generation, matching the paper's
host/device split.

Two generation paths (DESIGN.md §5):

* scalar :meth:`TargetGenerator.generate` — one vector per call, the
  reference implementation kept for tests/examples;
* columnar :meth:`TargetGenerator.generate_batch` — all ``B`` targets of a
  launch produced group-wise, one vectorized ``(g, n)`` pass per
  :class:`GeneticOp` present in the batch.  The canonical RNG draw order is
  fixed and documented there; it is *not* the scalar order, so the two
  paths agree bit-exactly only for draw-free operations (Best) and
  single-block draws (Random) — elsewhere equivalence is distributional
  (``tests/ga/test_batch_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.packet import GeneticOp
from repro.ga.pool import SolutionPool
from repro.utils.validation import check_probability

__all__ = ["OperationParams", "TargetGenerator"]


def _bernoulli_mask(rng: np.random.Generator, p: float, shape) -> np.ndarray:
    """Bernoulli(*p*) uint8 mask (0/1), shared by both generation paths.

    Drawn as 32-bit floats — half the raw Twister words of float64 and
    quantizing *p* at 2⁻²⁴, far below anything a search heuristic can
    resolve.  The bool compare is viewed as uint8 (same buffer) so masks
    compose with the 0/1 solution vectors via bit ops, no casting copies.
    """
    return (rng.random(shape, dtype=np.float32) < np.float32(p)).view(np.uint8)


def _fair_bits(rng: np.random.Generator, shape) -> np.ndarray:
    """Fair coin uint8 mask (0/1) — one Twister bit per value, the cheap
    draw for the ubiquitous 50 % crossover mix."""
    return rng.integers(0, 2, size=shape, dtype=np.uint8)


@dataclass(frozen=True)
class OperationParams:
    """Probabilities/sizes of the stochastic operations (paper defaults)."""

    #: per-bit flip probability of Mutation (paper: "say 1/8")
    mutation_p: float = 0.125
    #: per-bit write probability of Zero and One
    zero_p: float = 0.125
    one_p: float = 0.125
    #: minimum cyclic segment length of IntervalZero (paper: 32)
    interval_min: int = 32

    def __post_init__(self) -> None:
        check_probability(self.mutation_p, "mutation_p")
        check_probability(self.zero_p, "zero_p")
        check_probability(self.one_p, "one_p")
        if self.interval_min < 1:
            raise ValueError("interval_min must be >= 1")


class TargetGenerator:
    """Applies genetic operations to pools to produce target vectors."""

    def __init__(self, n: int, params: OperationParams | None = None) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.n = n
        self.params = params or OperationParams()

    # -- individual operations ------------------------------------------------
    def mutation(self, parent: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Flip each bit with probability ``mutation_p``."""
        return parent ^ _bernoulli_mask(rng, self.params.mutation_p, self.n)

    def crossover(
        self, a: np.ndarray, b: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-bit uniform mix of two parents."""
        take_b = _fair_bits(rng, self.n)
        # a where the coin is 0, b where it is 1 — pure uint8 bit algebra
        return a ^ ((a ^ b) & take_b)

    def zero(self, parent: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Write 0 to each bit with probability ``zero_p``."""
        return parent & (_bernoulli_mask(rng, self.params.zero_p, self.n) ^ 1)

    def one(self, parent: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Write 1 to each bit with probability ``one_p``."""
        return parent | _bernoulli_mask(rng, self.params.one_p, self.n)

    def interval_zero(self, parent: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Zero out a random cyclic segment of length in [interval_min, n/2].

        The segment wraps around, consistent with the cyclic bit layout used
        by CyclicMin.
        """
        lo, hi = self._interval_bounds()
        length = int(rng.integers(lo, hi + 1))
        start = int(rng.integers(self.n))
        out = parent.copy()
        positions = (start + np.arange(length)) % self.n
        out[positions] = 0
        return out

    def random_vector(self, rng: np.random.Generator) -> np.ndarray:
        """Fresh uniform random vector."""
        return rng.integers(0, 2, size=self.n, dtype=np.uint8)

    def _interval_bounds(self) -> tuple[int, int]:
        lo = min(self.params.interval_min, max(1, self.n // 2))
        hi = max(lo, self.n // 2)
        return lo, hi

    # -- batch operations -------------------------------------------------------
    # Each *_batch method is the (g, n) masked-array form of the scalar
    # operation above.  Parent matrices come from SolutionPool.select_parents
    # (one rng.random(g) draw each); per-bit masks are one rng.random((g, n))
    # draw.  Rows are independent: row i of the output depends only on row i
    # of the parents and row i of the mask.

    def mutation_batch(self, parents: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Batch Mutation: flip each bit with probability ``mutation_p``."""
        return parents ^ _bernoulli_mask(rng, self.params.mutation_p, parents.shape)

    def crossover_batch(
        self, a: np.ndarray, b: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Batch Crossover: per-bit uniform mix of two parent matrices."""
        take_b = _fair_bits(rng, a.shape)
        return a ^ ((a ^ b) & take_b)

    def zero_batch(self, parents: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Batch Zero: write 0 to each bit with probability ``zero_p``."""
        return parents & (_bernoulli_mask(rng, self.params.zero_p, parents.shape) ^ 1)

    def one_batch(self, parents: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Batch One: write 1 to each bit with probability ``one_p``."""
        return parents | _bernoulli_mask(rng, self.params.one_p, parents.shape)

    def interval_zero_batch(
        self, parents: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Batch IntervalZero: one random cyclic segment zeroed per row.

        Draw order: all segment lengths first (one ``integers`` call), then
        all start positions (one ``integers`` call) — the batch transpose of
        the scalar per-row (length, start) order.
        """
        g = parents.shape[0]
        lo, hi = self._interval_bounds()
        lengths = rng.integers(lo, hi + 1, size=g)
        starts = rng.integers(self.n, size=g)
        offsets = (np.arange(self.n)[None, :] - starts[:, None]) % self.n
        out = parents.copy()
        out[offsets < lengths[:, None]] = 0
        return out

    def random_batch(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Batch Random: ``(count, n)`` fresh uniform bits in one draw."""
        return rng.integers(0, 2, size=(count, self.n), dtype=np.uint8)

    # -- dispatch ---------------------------------------------------------------
    def generate(
        self,
        op: GeneticOp,
        pool: SolutionPool,
        neighbor_pool: SolutionPool | None,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Produce a target vector with operation *op* (scalar reference path).

        ``neighbor_pool`` is required for Xrossover; passing None degrades
        Xrossover to an in-pool Crossover (single-pool configurations).
        """
        if op == GeneticOp.MUTATION:
            return self.mutation(pool.select_vector(rng), rng)
        if op == GeneticOp.CROSSOVER:
            return self.crossover(
                pool.select_vector(rng), pool.select_vector(rng), rng
            )
        if op == GeneticOp.XROSSOVER:
            other = neighbor_pool if neighbor_pool is not None else pool
            return self.crossover(
                pool.select_vector(rng), other.select_vector(rng), rng
            )
        if op == GeneticOp.ZERO:
            return self.zero(pool.select_vector(rng), rng)
        if op == GeneticOp.ONE:
            return self.one(pool.select_vector(rng), rng)
        if op == GeneticOp.INTERVALZERO:
            return self.interval_zero(pool.select_vector(rng), rng)
        if op == GeneticOp.BEST:
            return pool.vectors[0].copy()
        if op == GeneticOp.RANDOM:
            return self.random_vector(rng)
        raise ValueError(f"unknown genetic operation: {op!r}")

    def generate_batch(
        self,
        operations: np.ndarray,
        pool: SolutionPool,
        neighbor_pool: SolutionPool | None,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Produce all target vectors of a launch group-wise (columnar path).

        *operations* is the batch's operation column (one
        :class:`GeneticOp` code per lane); the result is the matching
        ``(B, n)`` target matrix.

        Canonical RNG draw order (DESIGN.md §5): operation groups are
        processed in **ascending enum value** (Random < Best < Mutation <
        Crossover < Xrossover < Zero < One < IntervalZero), regardless of
        lane order; within a group, lanes keep batch order.  Per group the
        draws are: parent ranks (one ``rng.random(g)`` per parent matrix,
        first-parent before second-parent), then the operation's own masks
        in the orders documented on the ``*_batch`` methods.  Best draws
        nothing; Random draws one ``(g, n)`` bit block.
        """
        operations = np.asarray(operations, dtype=np.uint8)
        if operations.ndim != 1:
            raise ValueError("operations must be a 1-D op-code column")
        out = np.empty((operations.size, self.n), dtype=np.uint8)
        for code in np.unique(operations):  # ascending enum value
            op = GeneticOp(int(code))
            rows = np.flatnonzero(operations == code)
            out[rows] = self._generate_group(op, rows.size, pool, neighbor_pool, rng)
        return out

    def _generate_group(
        self,
        op: GeneticOp,
        count: int,
        pool: SolutionPool,
        neighbor_pool: SolutionPool | None,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """One vectorized ``(count, n)`` pass for a same-op lane group."""
        if op == GeneticOp.MUTATION:
            return self.mutation_batch(pool.select_parents(rng, count), rng)
        if op == GeneticOp.CROSSOVER:
            a = pool.select_parents(rng, count)
            b = pool.select_parents(rng, count)
            return self.crossover_batch(a, b, rng)
        if op == GeneticOp.XROSSOVER:
            other = neighbor_pool if neighbor_pool is not None else pool
            a = pool.select_parents(rng, count)
            b = other.select_parents(rng, count)
            return self.crossover_batch(a, b, rng)
        if op == GeneticOp.ZERO:
            return self.zero_batch(pool.select_parents(rng, count), rng)
        if op == GeneticOp.ONE:
            return self.one_batch(pool.select_parents(rng, count), rng)
        if op == GeneticOp.INTERVALZERO:
            return self.interval_zero_batch(pool.select_parents(rng, count), rng)
        if op == GeneticOp.BEST:
            return np.repeat(pool.vectors[:1], count, axis=0)
        if op == GeneticOp.RANDOM:
            return self.random_batch(count, rng)
        raise ValueError(f"unknown genetic operation: {op!r}")
