"""Solution pool (§IV.A): the per-GPU memory of good solutions.

A pool stores a fixed number of packets sorted by energy.  It is pre-filled
with random vectors at ``+∞`` (void) energy whose algorithm/operation fields
are initialized uniformly at random — this seeding is what bootstraps the
adaptive 5 %/95 % strategy selection.  A returning packet is inserted only
if it beats the worst stored solution, which it replaces.

Rank-biased parent selection follows the paper exactly: draw ``r`` uniform
in [0, 1) and take the ``(⌊r³·m⌋+1)``-th best solution, i.e. index
``⌊r³·m⌋`` — the best entry is chosen with probability ``m^{−1/3}``, far
above uniform ``1/m``.

Columnar data plane (DESIGN.md §5): the pool's storage *is* its interchange
format — four parallel arrays sorted by energy.  Batch callers never touch
:class:`~repro.core.packet.Packet` objects: :meth:`select_parents` returns a
rank-selected ``(count, n)`` parent matrix from one vectorized draw, and
:meth:`insert_batch` folds a whole launch's results in with one stable
sort-merge instead of ``B`` sequential worst-slot insertions.  The scalar
:meth:`insert` is kept as the reference implementation; the two are
equivalent (asserted by ``tests/ga/test_batch_equivalence.py``).

Hamming-distance work (``diversity()``, duplicate rejection) runs on
bit-packed rows — ``np.packbits`` + byte popcount — which is 8× smaller
than per-bit comparison and what a real implementation would keep resident.
"""

from __future__ import annotations

import numpy as np

from repro.core.packet import VOID_ENERGY, GeneticOp, MainAlgorithm, Packet

__all__ = ["SolutionPool"]

if hasattr(np, "bitwise_count"):  # numpy >= 2.0
    _popcount = np.bitwise_count
else:  # pragma: no cover - exercised only on numpy 1.x
    _POPCOUNT_TABLE = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

    def _popcount(a: np.ndarray) -> np.ndarray:
        return _POPCOUNT_TABLE[a]


class SolutionPool:
    """Fixed-capacity, energy-sorted pool of packets."""

    __slots__ = (
        "capacity",
        "n",
        "vectors",
        "energies",
        "algorithms",
        "operations",
        "allow_duplicates",
        "_merge_vectors",
        "_merge_energies",
        "_merge_algorithms",
        "_merge_operations",
    )

    def __init__(
        self,
        capacity: int,
        n: int,
        rng: np.random.Generator,
        algorithm_set: tuple[MainAlgorithm, ...] = tuple(MainAlgorithm),
        operation_set: tuple[GeneticOp, ...] = tuple(GeneticOp),
        allow_duplicates: bool = True,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if not algorithm_set or not operation_set:
            raise ValueError("algorithm_set and operation_set must be non-empty")
        self.capacity = capacity
        self.n = n
        self.allow_duplicates = allow_duplicates
        self.vectors = rng.integers(0, 2, size=(capacity, n), dtype=np.uint8)
        self.energies = np.full(capacity, VOID_ENERGY, dtype=np.int64)
        alg_choices = np.array([int(a) for a in algorithm_set], dtype=np.uint8)
        op_choices = np.array([int(o) for o in operation_set], dtype=np.uint8)
        self.algorithms = rng.choice(alg_choices, size=capacity)
        self.operations = rng.choice(op_choices, size=capacity)
        # sort-merge scratch reused across insert_batch calls (sized
        # capacity + B on first use, regrown only for a larger batch)
        self._merge_vectors: np.ndarray | None = None
        self._merge_energies: np.ndarray | None = None
        self._merge_algorithms: np.ndarray | None = None
        self._merge_operations: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of stored packets (always the capacity — pools are
        pre-filled, matching §IV.A)."""
        return self.capacity

    @property
    def best_energy(self) -> int:
        """Energy of the best stored solution (void if none returned yet)."""
        return int(self.energies[0])

    @property
    def worst_energy(self) -> int:
        """Energy of the worst stored solution."""
        return int(self.energies[-1])

    def best_packet(self) -> Packet:
        """Copy of the best stored packet."""
        return self.packet_at(0)

    def packet_at(self, index: int) -> Packet:
        """Copy of the packet at sorted position *index* (0 = best)."""
        if not 0 <= index < self.capacity:
            raise IndexError(f"index {index} out of range for pool of {self.capacity}")
        return Packet(
            self.vectors[index].copy(),
            int(self.energies[index]),
            MainAlgorithm(int(self.algorithms[index])),
            GeneticOp(int(self.operations[index])),
        )

    # ------------------------------------------------------------------
    def insert(self, packet: Packet) -> bool:
        """Insert *packet* if it beats the worst stored solution.

        Keeps the arrays sorted by shifting the tail one slot down —
        O(capacity · n) worst case, negligible next to a batch search.
        Returns True when the packet was stored.  This is the scalar
        reference path; whole launches go through :meth:`insert_batch`.
        """
        energy = packet.energy
        if energy >= self.energies[-1]:
            return False
        if not self.allow_duplicates:
            candidates = np.flatnonzero(self.energies == energy)
            if candidates.size:
                packed = np.packbits(np.asarray(packet.vector, dtype=np.uint8))
                stored = np.packbits(self.vectors[candidates], axis=1)
                if np.any(np.all(stored == packed, axis=1)):
                    return False
        pos = int(np.searchsorted(self.energies, energy, side="right"))
        # shift (pos .. end-1] one slot toward the tail, dropping the worst
        self.vectors[pos + 1 :] = self.vectors[pos:-1]
        self.energies[pos + 1 :] = self.energies[pos:-1]
        self.algorithms[pos + 1 :] = self.algorithms[pos:-1]
        self.operations[pos + 1 :] = self.operations[pos:-1]
        self.vectors[pos] = packet.vector
        self.energies[pos] = energy
        self.algorithms[pos] = int(packet.algorithm)
        self.operations[pos] = int(packet.operation)
        return True

    def insert_batch(
        self,
        vectors: np.ndarray,
        energies: np.ndarray,
        algorithms: np.ndarray,
        operations: np.ndarray,
    ) -> int:
        """Fold a whole launch's results in with one stable sort-merge.

        Equivalent to calling :meth:`insert` on each row in order (same
        final pool content): candidates merge after pool rows of equal
        energy (the ``side="right"`` rule) and in batch order among
        themselves, which is exactly the tie-break of a stable sort over
        ``[pool rows..., batch rows...]``.  Returns the number of batch
        rows present in the pool afterwards (rows inserted then displaced
        by later rows of the same batch are not counted).
        """
        vectors = np.ascontiguousarray(vectors, dtype=np.uint8)
        energies = np.asarray(energies, dtype=np.int64)
        algorithms = np.asarray(algorithms, dtype=np.uint8)
        operations = np.asarray(operations, dtype=np.uint8)
        if vectors.ndim != 2 or vectors.shape[1] != self.n:
            raise ValueError(f"vectors must be (B, {self.n}), got {vectors.shape}")
        for name, column in (
            ("energies", energies),
            ("algorithms", algorithms),
            ("operations", operations),
        ):
            if column.shape != (vectors.shape[0],):
                raise ValueError(f"{name} must have one entry per vector row")
        # rows at or above the current worst can never survive the merge
        # (the pool's rows win every tie), so drop them up front
        keep = np.flatnonzero(energies < self.energies[-1])
        if keep.size == 0:
            return 0
        vectors = vectors[keep]
        energies = energies[keep]
        algorithms = algorithms[keep]
        operations = operations[keep]
        if not self.allow_duplicates:
            fresh = ~self._duplicate_mask(vectors, energies)
            if not np.all(fresh):
                vectors = vectors[fresh]
                energies = energies[fresh]
                algorithms = algorithms[fresh]
                operations = operations[fresh]
                if energies.size == 0:
                    return 0
        cap = self.capacity
        total = cap + energies.size
        if self._merge_energies is None or self._merge_energies.size < total:
            self._merge_vectors = np.empty((total, self.n), dtype=np.uint8)
            self._merge_energies = np.empty(total, dtype=np.int64)
            self._merge_algorithms = np.empty(total, dtype=np.uint8)
            self._merge_operations = np.empty(total, dtype=np.uint8)
        merged_energies = self._merge_energies[:total]
        merged_energies[:cap] = self.energies
        merged_energies[cap:] = energies
        order = np.argsort(merged_energies, kind="stable")[:cap]
        inserted = int(np.count_nonzero(order >= cap))
        if inserted == 0:
            return 0
        # gather through the scratch copies straight back into the pool
        # arrays — the scratch holds the pre-merge rows, so writing the
        # pool in place cannot clobber a row still to be read
        merged_vectors = self._merge_vectors[:total]
        merged_vectors[:cap] = self.vectors
        merged_vectors[cap:] = vectors
        merged_algorithms = self._merge_algorithms[:total]
        merged_algorithms[:cap] = self.algorithms
        merged_algorithms[cap:] = algorithms
        merged_operations = self._merge_operations[:total]
        merged_operations[:cap] = self.operations
        merged_operations[cap:] = operations
        np.take(merged_vectors, order, axis=0, out=self.vectors)
        np.take(merged_energies, order, out=self.energies)
        np.take(merged_algorithms, order, out=self.algorithms)
        np.take(merged_operations, order, out=self.operations)
        return inserted

    def _duplicate_mask(self, vectors: np.ndarray, energies: np.ndarray) -> np.ndarray:
        """True per candidate row duplicating (energy, vector) of a pool row
        or of an earlier candidate row — the batch analogue of the scalar
        duplicate check.

        Energy equality gates the expensive part: only (candidate, row)
        pairs with matching energies — typically a handful — get the
        bit-packed byte comparison, never the full B×capacity×n cross
        product."""
        k = vectors.shape[0]
        dup = np.zeros(k, dtype=bool)
        ci, pj = np.nonzero(energies[:, None] == self.energies[None, :])
        ii, jj = np.nonzero(
            (energies[:, None] == energies[None, :]) & np.tri(k, k=-1, dtype=bool)
        )
        if ci.size == 0 and ii.size == 0:
            return dup
        cand = np.packbits(vectors, axis=1)
        if ci.size:
            rows = np.unique(pj)
            pool = np.packbits(self.vectors[rows], axis=1)
            ci = ci[np.all(cand[ci] == pool[np.searchsorted(rows, pj)], axis=1)]
            dup[ci] = True
        if ii.size:
            # a row equal to ANY earlier candidate is dropped, even one
            # itself dropped — its twin duplicates the same original
            ii = ii[np.all(cand[ii] == cand[jj], axis=1)]
            dup[ii] = True
        return dup

    # ------------------------------------------------------------------
    def select_index(self, r: float) -> int:
        """Cubic rank-biased index: ``⌊r³ · m⌋`` for uniform ``r ∈ [0, 1)``."""
        if not 0.0 <= r < 1.0:
            raise ValueError(f"r must be in [0, 1), got {r}")
        return int(r**3 * self.capacity)

    def select_indices(self, r: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`select_index`: ``⌊r³ · m⌋`` element-wise."""
        r = np.asarray(r, dtype=np.float64)
        if r.size and not ((r >= 0.0) & (r < 1.0)).all():
            raise ValueError("all r must be in [0, 1)")
        return (r**3 * self.capacity).astype(np.intp)

    def select_vector(self, rng: np.random.Generator) -> np.ndarray:
        """Rank-biased random parent vector (copy)."""
        return self.vectors[self.select_index(rng.random())].copy()

    def select_parents(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Rank-biased ``(count, n)`` parent matrix from ONE vectorized draw.

        Canonical batch draw: a single ``rng.random(count)`` call supplies
        every rank; row ``i`` of the result is the parent for lane ``i``.
        The rows are copies (fancy indexing), safe to mutate in place.
        """
        return self.vectors[self.select_indices(rng.random(count))]

    def uniform_row(self, rng: np.random.Generator) -> int:
        """Uniformly random stored row index (used by adaptive selection)."""
        return int(rng.integers(self.capacity))

    def has_real_solutions(self) -> bool:
        """True once at least one search result has been inserted."""
        return self.energies[0] != VOID_ENERGY

    def reinitialize(self, rng: np.random.Generator) -> None:
        """Refill with random vectors at void energy (§IV.B restart)."""
        self.vectors = rng.integers(0, 2, size=(self.capacity, self.n), dtype=np.uint8)
        self.energies.fill(VOID_ENERGY)

    def diversity(self) -> float | None:
        """Mean pairwise Hamming distance of the *returned* solutions.

        §IV.B's collapse signal: a pool full of relatives of one solution
        has low diversity.  Pre-filled random rows (void energy) are
        excluded; None when fewer than two real solutions are stored.

        Computed on bit-packed rows: XOR of ``⌈n/8⌉``-byte rows + popcount,
        8× less traffic than per-bit comparison (packbits zero-pads the
        last byte identically for every row, so padding never contributes).
        """
        real = np.flatnonzero(self.energies != VOID_ENERGY)
        if real.size < 2:
            return None
        packed = np.packbits(self.vectors[real], axis=1)
        m = packed.shape[0]
        diff = _popcount(packed[:, None, :] ^ packed[None, :, :]).sum(dtype=np.int64)
        return float(diff / (m * (m - 1)))
