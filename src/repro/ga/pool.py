"""Solution pool (§IV.A): the per-GPU memory of good solutions.

A pool stores a fixed number of packets sorted by energy.  It is pre-filled
with random vectors at ``+∞`` (void) energy whose algorithm/operation fields
are initialized uniformly at random — this seeding is what bootstraps the
adaptive 5 %/95 % strategy selection.  A returning packet is inserted only
if it beats the worst stored solution, which it replaces.

Rank-biased parent selection follows the paper exactly: draw ``r`` uniform
in [0, 1) and take the ``(⌊r³·m⌋+1)``-th best solution, i.e. index
``⌊r³·m⌋`` — the best entry is chosen with probability ``m^{−1/3}``, far
above uniform ``1/m``.
"""

from __future__ import annotations

import numpy as np

from repro.core.packet import VOID_ENERGY, GeneticOp, MainAlgorithm, Packet

__all__ = ["SolutionPool"]


class SolutionPool:
    """Fixed-capacity, energy-sorted pool of packets."""

    __slots__ = (
        "capacity",
        "n",
        "vectors",
        "energies",
        "algorithms",
        "operations",
        "allow_duplicates",
    )

    def __init__(
        self,
        capacity: int,
        n: int,
        rng: np.random.Generator,
        algorithm_set: tuple[MainAlgorithm, ...] = tuple(MainAlgorithm),
        operation_set: tuple[GeneticOp, ...] = tuple(GeneticOp),
        allow_duplicates: bool = True,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if not algorithm_set or not operation_set:
            raise ValueError("algorithm_set and operation_set must be non-empty")
        self.capacity = capacity
        self.n = n
        self.allow_duplicates = allow_duplicates
        self.vectors = rng.integers(0, 2, size=(capacity, n), dtype=np.uint8)
        self.energies = np.full(capacity, VOID_ENERGY, dtype=np.int64)
        alg_choices = np.array([int(a) for a in algorithm_set], dtype=np.uint8)
        op_choices = np.array([int(o) for o in operation_set], dtype=np.uint8)
        self.algorithms = rng.choice(alg_choices, size=capacity)
        self.operations = rng.choice(op_choices, size=capacity)

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of stored packets (always the capacity — pools are
        pre-filled, matching §IV.A)."""
        return self.capacity

    @property
    def best_energy(self) -> int:
        """Energy of the best stored solution (void if none returned yet)."""
        return int(self.energies[0])

    @property
    def worst_energy(self) -> int:
        """Energy of the worst stored solution."""
        return int(self.energies[-1])

    def best_packet(self) -> Packet:
        """Copy of the best stored packet."""
        return self.packet_at(0)

    def packet_at(self, index: int) -> Packet:
        """Copy of the packet at sorted position *index* (0 = best)."""
        if not 0 <= index < self.capacity:
            raise IndexError(f"index {index} out of range for pool of {self.capacity}")
        return Packet(
            self.vectors[index].copy(),
            int(self.energies[index]),
            MainAlgorithm(int(self.algorithms[index])),
            GeneticOp(int(self.operations[index])),
        )

    # ------------------------------------------------------------------
    def insert(self, packet: Packet) -> bool:
        """Insert *packet* if it beats the worst stored solution.

        Keeps the arrays sorted by shifting the tail one slot down —
        O(capacity · n) worst case, negligible next to a batch search.
        Returns True when the packet was stored.
        """
        energy = packet.energy
        if energy >= self.energies[-1]:
            return False
        if not self.allow_duplicates:
            candidates = np.flatnonzero(self.energies == energy)
            if candidates.size and np.any(
                np.all(self.vectors[candidates] == packet.vector, axis=1)
            ):
                return False
        pos = int(np.searchsorted(self.energies, energy, side="right"))
        # shift (pos .. end-1] one slot toward the tail, dropping the worst
        self.vectors[pos + 1 :] = self.vectors[pos:-1]
        self.energies[pos + 1 :] = self.energies[pos:-1]
        self.algorithms[pos + 1 :] = self.algorithms[pos:-1]
        self.operations[pos + 1 :] = self.operations[pos:-1]
        self.vectors[pos] = packet.vector
        self.energies[pos] = energy
        self.algorithms[pos] = int(packet.algorithm)
        self.operations[pos] = int(packet.operation)
        return True

    # ------------------------------------------------------------------
    def select_index(self, r: float) -> int:
        """Cubic rank-biased index: ``⌊r³ · m⌋`` for uniform ``r ∈ [0, 1)``."""
        if not 0.0 <= r < 1.0:
            raise ValueError(f"r must be in [0, 1), got {r}")
        return int(r**3 * self.capacity)

    def select_vector(self, rng: np.random.Generator) -> np.ndarray:
        """Rank-biased random parent vector (copy)."""
        return self.vectors[self.select_index(rng.random())].copy()

    def uniform_row(self, rng: np.random.Generator) -> int:
        """Uniformly random stored row index (used by adaptive selection)."""
        return int(rng.integers(self.capacity))

    def has_real_solutions(self) -> bool:
        """True once at least one search result has been inserted."""
        return self.energies[0] != VOID_ENERGY

    def reinitialize(self, rng: np.random.Generator) -> None:
        """Refill with random vectors at void energy (§IV.B restart)."""
        self.vectors = rng.integers(0, 2, size=(self.capacity, self.n), dtype=np.uint8)
        self.energies.fill(VOID_ENERGY)

    def diversity(self) -> float | None:
        """Mean pairwise Hamming distance of the *returned* solutions.

        §IV.B's collapse signal: a pool full of relatives of one solution
        has low diversity.  Pre-filled random rows (void energy) are
        excluded; None when fewer than two real solutions are stored.
        """
        real = np.flatnonzero(self.energies != VOID_ENERGY)
        if real.size < 2:
            return None
        vecs = self.vectors[real]
        m = vecs.shape[0]
        diff = (vecs[:, None, :] != vecs[None, :, :]).sum(axis=2)
        return float(diff.sum() / (m * (m - 1)))
