"""GA layer (§IV): solution pools, genetic operations, adaptive selection."""

from repro.ga.adaptive import AdaptiveSelector, SelectionCounters
from repro.ga.island import IslandRing
from repro.ga.operations import OperationParams, TargetGenerator
from repro.ga.pool import SolutionPool

__all__ = [
    "AdaptiveSelector",
    "IslandRing",
    "OperationParams",
    "SelectionCounters",
    "SolutionPool",
    "TargetGenerator",
]
