"""Island model (§IV.B): a cyclic ring of solution pools.

One pool per (virtual) GPU, ordered cyclically as in Fig. 2.  Unlike
conventional island models there is *no* solution migration; instead the
Xrossover operation crosses a parent from a pool with a parent from its ring
neighbour, so batch searches traverse the region of the n-bit cube *between*
pools and good midway solutions pull the pools toward each other.
"""

from __future__ import annotations

import numpy as np

from repro.core.packet import Packet
from repro.ga.pool import SolutionPool

__all__ = ["IslandRing", "StallTracker"]


class StallTracker:
    """Work-unit stall counter driving the §IV.B merged-ring restarts.

    The restart trigger is "no global improvement for a while".

    **Units contract**: ``threshold`` and the ``units`` argument of
    :meth:`update` are denominated in the *same* work unit, whatever the
    caller's scheduler naturally counts — the round scheduler calls
    ``update(improved)`` once per barrier (one unit = one round), while
    the asynchronous engines have no rounds and call it once per device
    *launch* completion.  A threshold configured in rounds
    (``DABSConfig.restart_after_stall``) must therefore be converted to
    the caller's unit before construction; :meth:`scaled` is that
    conversion.  Mixing units — a round-denominated threshold counted
    down in launches — makes restarts fire ``launches_per_round`` times
    too early, which is exactly the miscalibration that appears when a
    fleet is sharded across federation islands and each island counts
    only its own launches.  Both schedulers share this counter so the
    policy lives in one place.
    """

    __slots__ = ("threshold", "count")

    def __init__(self, threshold: int | None) -> None:
        if threshold is not None and threshold < 1:
            raise ValueError("threshold must be >= 1 or None")
        self.threshold = threshold
        self.count = 0

    @classmethod
    def scaled(
        cls, threshold_rounds: int | None, launches_per_round: int
    ) -> "StallTracker":
        """A tracker whose round-denominated *threshold_rounds* is counted
        in launch units.

        *launches_per_round* is the number of launch completions that make
        up one round **of the counting fleet** — i.e. the local
        ``config.num_gpus`` of the solver doing the counting, not the
        global device count of a larger deployment.  A federation island
        running 2 of a formation's 8 devices passes ``2``: it sees 2
        launches per one of *its* rounds, so "stalled for N rounds" means
        ``2 × N`` of its launches.  Scaling by the global fleet size would
        multiply the two miscalibrations (islands × devices) together and
        make sharded fleets restart almost never.
        """
        if launches_per_round < 1:
            raise ValueError("launches_per_round must be >= 1")
        if threshold_rounds is None:
            return cls(None)
        return cls(threshold_rounds * launches_per_round)

    def update(self, improved: bool, units: int = 1) -> bool:
        """Record *units* of work; True when a restart is due.

        *units* must be denominated in the unit the threshold was
        constructed in (see the class docstring)."""
        self.count = 0 if improved else self.count + units
        return self.threshold is not None and self.count >= self.threshold

    def reset(self) -> None:
        """Clear the counter (called after a restart)."""
        self.count = 0


class IslandRing:
    """Cyclically ordered solution pools with ring-neighbour lookup."""

    def __init__(self, pools: list[SolutionPool]) -> None:
        if not pools:
            raise ValueError("IslandRing needs at least one pool")
        n = pools[0].n
        if any(p.n != n for p in pools):
            raise ValueError("all pools must store vectors of the same length")
        self.pools = list(pools)

    def __len__(self) -> int:
        return len(self.pools)

    def __getitem__(self, index: int) -> SolutionPool:
        return self.pools[index]

    def neighbor_of(self, index: int) -> SolutionPool:
        """The Xrossover partner pool: the next pool on the ring."""
        return self.pools[(index + 1) % len(self.pools)]

    def global_best(self) -> Packet:
        """Best packet across every pool."""
        energies = [p.best_energy for p in self.pools]
        return self.pools[int(np.argmin(energies))].best_packet()

    def global_best_energy(self) -> int:
        """Best energy across every pool."""
        return min(p.best_energy for p in self.pools)

    def reinitialize(self, rng: np.random.Generator) -> None:
        """Restart all pools with fresh random vectors (§IV.B: used when the
        ring has collapsed into relatives of one solution)."""
        for pool in self.pools:
            pool.reinitialize(rng)

    def diversities(self) -> list[float | None]:
        """Per-pool mean pairwise Hamming distance, in ring order.

        Each entry is :meth:`SolutionPool.diversity` — computed on
        bit-packed rows — or None while that pool is still warming up.
        """
        return [p.diversity() for p in self.pools]

    def collapsed(self, threshold: float) -> bool:
        """True when *every* pool's diversity has fallen below *threshold*.

        Pools without enough returned solutions to measure do not count as
        collapsed (the ring is still warming up).
        """
        diversities = self.diversities()
        if any(d is None for d in diversities):
            return False
        return all(d < threshold for d in diversities)
