"""Adaptive strategy selection (§IV.A): the 5 %/95 % rule.

The host picks the main search algorithm and genetic operation for each new
packet as follows: with small probability (5 %) choose uniformly from the
full strategy set (exploration); otherwise read a uniformly random row of
the solution pool and reuse the strategy recorded there (exploitation).
Because pool rows record the strategies that *produced* good solutions,
successful strategies are automatically selected more often — no explicit
scores or decay parameters.

The columnar path (:meth:`AdaptiveSelector.select_batch`) draws a whole
launch's strategy columns at once: per column, one explore-coin vector, one
pool-row vector and one uniform-fallback vector (DESIGN.md §5 documents the
order).  The scalar methods are kept as the reference path; both implement
the same per-lane distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.packet import GeneticOp, MainAlgorithm
from repro.ga.pool import SolutionPool
from repro.utils.validation import check_probability

__all__ = ["AdaptiveSelector", "SelectionCounters"]


@dataclass
class SelectionCounters:
    """Execution counts per strategy (the raw data behind Table V)."""

    algorithms: dict[MainAlgorithm, int] = field(
        default_factory=lambda: {a: 0 for a in MainAlgorithm}
    )
    operations: dict[GeneticOp, int] = field(
        default_factory=lambda: {o: 0 for o in GeneticOp}
    )

    def record(self, algorithm: MainAlgorithm, operation: GeneticOp) -> None:
        """Count one packet generation."""
        self.algorithms[algorithm] += 1
        self.operations[operation] += 1

    def record_batch(self, algorithms: np.ndarray, operations: np.ndarray) -> None:
        """Count a whole batch of generations from its strategy columns.

        One ``np.bincount`` per column — no per-packet Python loop.  Codes
        outside the enum ranges raise, like the per-packet enum
        construction they replace.
        """
        alg_counts = np.bincount(
            np.asarray(algorithms, dtype=np.intp), minlength=len(MainAlgorithm)
        )
        op_counts = np.bincount(
            np.asarray(operations, dtype=np.intp), minlength=len(GeneticOp)
        )
        if alg_counts[len(MainAlgorithm) :].any():
            raise ValueError("algorithm column contains codes outside MainAlgorithm")
        if op_counts[len(GeneticOp) :].any():
            raise ValueError("operation column contains codes outside GeneticOp")
        for a in MainAlgorithm:
            self.algorithms[a] += int(alg_counts[int(a)])
        for o in GeneticOp:
            self.operations[o] += int(op_counts[int(o)])

    def merge(self, other: "SelectionCounters") -> None:
        """Accumulate counts from another counter (per-pool → per-run)."""
        for a, c in other.algorithms.items():
            self.algorithms[a] += c
        for o, c in other.operations.items():
            self.operations[o] += c

    def algorithm_frequencies(self) -> dict[MainAlgorithm, float]:
        """Normalized execution frequencies (sum to 1, or all-zero)."""
        total = sum(self.algorithms.values())
        if total == 0:
            return {a: 0.0 for a in self.algorithms}
        return {a: c / total for a, c in self.algorithms.items()}

    def operation_frequencies(self) -> dict[GeneticOp, float]:
        """Normalized execution frequencies (sum to 1, or all-zero)."""
        total = sum(self.operations.values())
        if total == 0:
            return {o: 0.0 for o in self.operations}
        return {o: c / total for o, c in self.operations.items()}


class AdaptiveSelector:
    """Selects (algorithm, operation) pairs for new packets."""

    def __init__(
        self,
        algorithm_set: tuple[MainAlgorithm, ...] = tuple(MainAlgorithm),
        operation_set: tuple[GeneticOp, ...] = tuple(GeneticOp),
        explore_probability: float = 0.05,
    ) -> None:
        if not algorithm_set:
            raise ValueError("algorithm_set must be non-empty")
        if not operation_set:
            raise ValueError("operation_set must be non-empty")
        self.algorithm_set = tuple(algorithm_set)
        self.operation_set = tuple(operation_set)
        self.explore_probability = check_probability(
            explore_probability, "explore_probability"
        )

    def select_algorithm(
        self, pool: SolutionPool, rng: np.random.Generator
    ) -> MainAlgorithm:
        """5 % uniform exploration / 95 % copy from a random pool row."""
        if rng.random() >= self.explore_probability:
            row = pool.uniform_row(rng)
            candidate = MainAlgorithm(int(pool.algorithms[row]))
            if candidate in self.algorithm_set:
                return candidate
            # a restricted selector reading a foreign pool falls back to
            # exploration rather than running a disallowed algorithm
        return self.algorithm_set[int(rng.integers(len(self.algorithm_set)))]

    def select_operation(
        self, pool: SolutionPool, rng: np.random.Generator
    ) -> GeneticOp:
        """5 % uniform exploration / 95 % copy from a random pool row."""
        if rng.random() >= self.explore_probability:
            row = pool.uniform_row(rng)
            candidate = GeneticOp(int(pool.operations[row]))
            if candidate in self.operation_set:
                return candidate
        return self.operation_set[int(rng.integers(len(self.operation_set)))]

    # -- columnar path ---------------------------------------------------------
    def _select_column(
        self,
        pool_column: np.ndarray,
        allowed: tuple,
        pool_capacity: int,
        rng: np.random.Generator,
        count: int,
    ) -> np.ndarray:
        """One strategy column for *count* lanes, three vectorized draws.

        Canonical draw order: explore coins ``rng.random(count)``, pool
        rows ``rng.integers(capacity, size=count)``, uniform fallbacks
        ``rng.integers(len(allowed), size=count)``.  Unlike the scalar
        path the fallback draw always happens (unused lanes discard it) —
        the per-lane distribution is identical, the stream consumption is
        not.
        """
        coins = rng.random(count)
        rows = rng.integers(pool_capacity, size=count)
        fallback = rng.integers(len(allowed), size=count)
        allowed_codes = np.array([int(x) for x in allowed], dtype=np.uint8)
        from_pool = pool_column[rows]
        exploit = (coins >= self.explore_probability) & np.isin(
            from_pool, allowed_codes
        )
        return np.where(exploit, from_pool, allowed_codes[fallback]).astype(np.uint8)

    def select_batch(
        self, pool: SolutionPool, rng: np.random.Generator, count: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Strategy columns ``(algorithms, operations)`` for a whole batch.

        The algorithm column is drawn first, then the operation column —
        the batch transpose of the scalar per-packet (algorithm, operation)
        order.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        algorithms = self._select_column(
            pool.algorithms, self.algorithm_set, pool.capacity, rng, count
        )
        operations = self._select_column(
            pool.operations, self.operation_set, pool.capacity, rng, count
        )
        return algorithms, operations
