"""Argument validation helpers used across the public API.

All helpers raise ``ValueError``/``TypeError`` with actionable messages and
return the validated (possibly converted) value so callers can write
``x = check_bit_vector(x, n)`` once at an API boundary and stay unchecked in
hot loops.
"""

from __future__ import annotations

import numpy as np


def check_square_matrix(matrix, name: str = "matrix") -> np.ndarray:
    """Validate that *matrix* is a square 2-D array and return it as ndarray."""
    arr = np.asarray(matrix)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-dimensional, got ndim={arr.ndim}")
    if arr.shape[0] != arr.shape[1]:
        raise ValueError(f"{name} must be square, got shape {arr.shape}")
    if arr.shape[0] == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.issubdtype(arr.dtype, np.number):
        raise TypeError(f"{name} must be numeric, got dtype {arr.dtype}")
    if np.issubdtype(arr.dtype, np.floating) and not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must not contain NaN or infinity")
    return arr


def check_bit_vector(x, n: int | None = None, name: str = "x") -> np.ndarray:
    """Validate a 0/1 vector and return it as a contiguous uint8 array."""
    arr = np.ascontiguousarray(x)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-dimensional, got ndim={arr.ndim}")
    if n is not None and arr.shape[0] != n:
        raise ValueError(f"{name} must have length {n}, got {arr.shape[0]}")
    if arr.dtype != np.uint8:
        if not np.issubdtype(arr.dtype, np.number) and arr.dtype != np.bool_:
            raise TypeError(f"{name} must be numeric or boolean, got {arr.dtype}")
        converted = arr.astype(np.uint8)
        if not np.array_equal(converted, arr):
            raise ValueError(f"{name} must contain only 0/1 values")
        arr = converted
    if arr.size and arr.max() > 1:
        raise ValueError(f"{name} must contain only 0/1 values")
    return arr


def check_probability(p: float, name: str = "p") -> float:
    """Validate that *p* lies in [0, 1]."""
    p = float(p)
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {p}")
    return p


def check_positive(value, name: str = "value", *, strict: bool = True):
    """Validate that a scalar is positive (or non-negative when not strict)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return value


def check_in_range(value, low, high, name: str = "value"):
    """Validate that ``low <= value <= high``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return value
