"""Bit-vector helpers: packing, Hamming distance, formatting.

Solution vectors throughout the library are dense ``uint8`` arrays of 0/1
values (one byte per bit).  Dense layout keeps the hot ``(B, n)`` kernels
simple; packing is only used for storage/transport utilities.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_bit_vector


def pack_bits(x: np.ndarray) -> np.ndarray:
    """Pack a 0/1 vector into a compact ``uint8`` byte array (8 bits/byte)."""
    x = check_bit_vector(x)
    return np.packbits(x)


def unpack_bits(packed: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`; *n* restores the original length."""
    packed = np.asarray(packed, dtype=np.uint8)
    if n < 0 or n > packed.size * 8:
        raise ValueError(f"cannot unpack {n} bits from {packed.size} bytes")
    return np.unpackbits(packed, count=n)


def hamming_distance(a: np.ndarray, b: np.ndarray) -> int:
    """Number of positions where the two bit vectors differ."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return int(np.count_nonzero(a != b))


def random_bit_vector(n: int, rng: np.random.Generator) -> np.ndarray:
    """Uniformly random 0/1 vector of length *n*."""
    return rng.integers(0, 2, size=n, dtype=np.uint8)


def format_bits(x: np.ndarray, group: int = 4) -> str:
    """Render a bit vector as grouped 0/1 text, e.g. ``1101 0010``."""
    x = check_bit_vector(x)
    s = "".join("1" if v else "0" for v in x)
    if group <= 0:
        return s
    return " ".join(s[i : i + group] for i in range(0, len(s), group))
