"""Shared low-level utilities: argument validation and bit-vector helpers."""

from repro.utils.bitvec import (
    format_bits,
    hamming_distance,
    pack_bits,
    random_bit_vector,
    unpack_bits,
)
from repro.utils.validation import (
    check_bit_vector,
    check_in_range,
    check_positive,
    check_probability,
    check_square_matrix,
)

__all__ = [
    "check_bit_vector",
    "check_in_range",
    "check_positive",
    "check_probability",
    "check_square_matrix",
    "format_bits",
    "hamming_distance",
    "pack_bits",
    "random_bit_vector",
    "unpack_bits",
]
