"""Coalesced super-launches: continuous batching for co-tenant jobs.

The paper's throughput comes from bulk execution — many search states per
kernel launch.  The solve service undermines that for its own sweet-spot
workload: dozens of small co-tenant jobs over one cache-hit
:class:`~repro.backends.PreparedProblem` each launch their own
``VirtualGPU.launch``, paying the Python phase-loop overhead once *per
job* per round.  This module packs compatible queued launches row-wise
into one **super-launch**: the fused phase runners execute once over the
stacked ``(ΣB, n)`` batch, and completions are split back per job by row
segment (DESIGN.md §12).

Packing is bit-exact per job — including final RNG lane states, tabu
stamps carried into the next launch, and CyclicMin's persistent window
cursor — which is non-trivial because the batch-search *schedule* couples
rows: straight/greedy phases run data-dependent iteration counts, the
outer loop stops on a whole-group flip-budget test, and the tabu clock
advances by the group-wide phase length.  The executor therefore models
the pack as **cells** (one per segment × lockstep algorithm group, the
unit a solo launch would run) and drives them in waves:

* a per-row **vector tabu clock** (:meth:`TabuTracker.vectorize_clock`)
  replaces the scalar clock, with a per-cell fix-up after the
  data-dependent phases (a cell's clock advances by *its own* max flip
  count, exactly as the solo scalar clock would);
* straight runs once over all rows; greedy and main phases run over
  maximal contiguous spans of still-active cells (main spans additionally
  share one algorithm, so the lowered spec and iteration count are
  uniform) — a finished cell is excluded from every later wave, so its
  rows are frozen at exactly the state the solo launch would leave;
* the whole-group budget test is evaluated per cell, in the same
  schedule position as the solo loop.

Rows riding a wave longer than their own phase would have lasted are
harmless by construction: straight/greedy consume no RNG, inactive rows
take no flips and write no stamps, and ``BestTracker.fold`` is idempotent
on an unchanged row.  Nothing is committed back to any device until every
cell has finished, so a failed super-launch leaves all devices untouched
and its segments can simply be re-issued individually.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.backends import pack_compatibility_key
from repro.core.delta import BatchDeltaState
from repro.core.packet import MainAlgorithm, PacketBatch
from repro.core.rng import XorShift64Star
from repro.gpu.virtual_gpu import VirtualGPU
from repro.resilience import chaos
from repro.resilience.chaos import ChaosError
from repro.search.batch import BestTracker
from repro.search.cyclicmin import CyclicMinSearch
from repro.search.maxmin import MaxMinSearch
from repro.search.positivemin import PositiveMinSearch
from repro.search.randommin import RandomMinSearch
from repro.search.tabu import TabuTracker
from repro.search.twoneighbor import TwoNeighborSearch

__all__ = ["PackScratch", "PackSegment", "SegmentResult", "SuperLaunch", "pack_key"]

#: the built-in algorithms whose packed wave execution is proven bit-exact;
#: a device carrying any other (subclassed) algorithm is never packed
_PACKABLE_ALGORITHM_TYPES = (
    MaxMinSearch,
    CyclicMinSearch,
    RandomMinSearch,
    PositiveMinSearch,
    TwoNeighborSearch,
)


def pack_key(gpu):
    """The compatibility key under which *gpu*'s launches may coalesce.

    ``None`` when this device must not participate in super-launches:
    stepwise execution, a non-builtin algorithm implementation, a
    non-packable backend or float arithmetic (see
    :func:`repro.backends.pack_compatibility_key`) — or anything that is
    not a real :class:`~repro.gpu.virtual_gpu.VirtualGPU` (tests inject
    stub devices; a stub cannot honor the packed execution contract).
    """
    if not isinstance(gpu, VirtualGPU):
        return None
    if not gpu.fused:
        return None
    for alg in gpu.algorithms.values():
        if type(alg) not in _PACKABLE_ALGORITHM_TYPES:
            return None
    return pack_compatibility_key(gpu.backend, gpu.kernel, gpu.model, gpu.config)


class PackSegment:
    """One job's launch inside a super-launch (the pack/split unit)."""

    __slots__ = ("device_id", "seq", "gpu", "batch", "tag")

    def __init__(self, device_id, seq, gpu, batch, tag) -> None:
        self.device_id = device_id
        self.seq = seq
        self.gpu = gpu
        self.batch = batch
        self.tag = tag


class SegmentResult:
    """One segment's completed launch, split out of a super-launch."""

    __slots__ = ("segment", "result", "flips", "truncations", "truncation_events")

    def __init__(self, segment, result, flips, truncations, truncation_events) -> None:
        self.segment = segment
        self.result = result
        self.flips = flips
        self.truncations = truncations
        self.truncation_events = truncation_events


class _Cell:
    """One lockstep (segment, algorithm) group: the solo-launch unit."""

    __slots__ = ("alg", "seg", "rows", "start", "stop", "done", "mains_done", "cursor_ready")

    def __init__(self, alg, seg, rows) -> None:
        self.alg = alg
        self.seg = seg
        self.rows = rows
        self.start = 0
        self.stop = 0
        self.done = False
        self.mains_done = 0
        self.cursor_ready = False

    @property
    def size(self) -> int:
        return self.rows.size


class PackScratch:
    """Merged device buffers for one lane's super-launches.

    Owned by the lane that executes packs (single-threaded), keyed by
    (backend, kernel, n, config) and grown geometrically to the largest
    super-batch seen.  Row-window views over the merged state/tabu/best
    buffers are cached per span, mirroring how a virtual GPU caches its
    lockstep-group views.
    """

    def __init__(self, model, backend, kernel, config, capacity: int) -> None:
        n = model.n
        self.capacity = capacity
        self.config = config
        self.state = BatchDeltaState(model, batch=capacity, backend=backend, kernel=kernel)
        self.tabu = TabuTracker(capacity, n, config.tabu_period)
        self.tabu.vectorize_clock()
        self.tracker = BestTracker(self.state)
        self.rng = np.empty((capacity, n), dtype=np.uint64)
        self.targets = np.empty((capacity, n), dtype=np.uint8)
        self.x_init = np.empty((capacity, n), dtype=np.uint8)
        self.cursor = np.empty(capacity, dtype=np.int64)
        #: the (start, stop) of the last span a phase ran on — when the
        #: next phase uses a different span, that facade's x-derived
        #: caches (e.g. the sparse backend's σ matrix) must be dropped
        self.last_span: tuple[int, int] | None = None
        self._windows: dict[tuple[int, int], tuple] = {}

    def window(self, start: int, stop: int):
        """Cached ``(state, tabu, tracker)`` views over rows [start, stop)."""
        key = (start, stop)
        triple = self._windows.get(key)
        if triple is None:
            triple = (
                self.state.row_window(start, stop),
                self.tabu.window(start, stop),
                self.tracker.window(start, stop),
            )
            self._windows[key] = triple
        return triple


def _spans(cells, same_alg: bool = False):
    """Maximal runs of consecutive not-done cells as (start, stop, cells).

    Cells are stored in merged-row order, so consecutive list entries are
    row-contiguous.  With ``same_alg`` a span additionally runs one single
    algorithm (main phases need a uniform spec and iteration count).
    """
    out = []
    i = 0
    count = len(cells)
    while i < count:
        if cells[i].done:
            i += 1
            continue
        j = i
        while (
            j + 1 < count
            and not cells[j + 1].done
            and (not same_alg or cells[j + 1].alg == cells[i].alg)
        ):
            j += 1
        out.append((cells[i].start, cells[j].stop, cells[i : j + 1]))
        i = j + 1
    return out


class SuperLaunch:
    """A set of pack-compatible launches executed as one fused batch.

    Created by the service scheduler, executed on a worker lane thread
    via :meth:`run`.  Exposes the segments so the worker group can split
    a failed or wedged pack back into individual launches.
    """

    __slots__ = ("segments", "total_rows")

    def __init__(self, segments: list[PackSegment]) -> None:
        if not segments:
            raise ValueError("a super-launch needs at least one segment")
        self.segments = list(segments)
        self.total_rows = sum(len(seg.batch) for seg in self.segments)

    def gpus(self):
        """The distinct devices this pack runs (hang-poisoning checks)."""
        return {id(seg.gpu): seg.gpu for seg in self.segments}.values()

    def run(self, scratch_map: dict) -> list[SegmentResult]:
        """Execute every segment bit-exactly and split the completions.

        Device state (solutions, RNG lanes, cursors, counters) is only
        committed once **all** cells finished — an exception anywhere
        leaves every device exactly as before the pack, so the caller can
        re-issue the segments individually.
        """
        segments = self.segments
        first = segments[0].gpu
        backend = first.backend
        kernel = first.kernel
        model = first.model
        config = first.config
        n = model.n

        # chaos parity: a solo launch fires backend_raise once per launch
        for seg in segments:
            if chaos.fire("backend_raise"):
                raise ChaosError(
                    f"chaos: injected backend failure ({seg.gpu.backend.name})"
                )

        cells: list[_Cell] = []
        for si, seg in enumerate(segments):
            if len(seg.batch) != seg.gpu.num_blocks:
                raise ValueError(
                    f"expected {seg.gpu.num_blocks} packets, got {len(seg.batch)}"
                )
            if seg.batch.n != n:
                raise ValueError(
                    f"packet vectors have length {seg.batch.n}, model has {n}"
                )
            for alg_enum, rows in seg.batch.group_by_algorithm().items():
                if alg_enum not in seg.gpu.algorithms:
                    raise ValueError(
                        f"{alg_enum!r} is not enabled on this device "
                        f"(enabled: {sorted(seg.gpu.algorithms)})"
                    )
                cells.append(_Cell(alg_enum, si, rows))
        # same-algorithm cells adjacent → maximal fused main spans
        cells.sort(key=lambda c: (int(c.alg), c.seg))
        total = 0
        for cell in cells:
            cell.start = total
            total += cell.size
            cell.stop = total

        key = (id(backend), id(kernel), n, config)
        scratch = scratch_map.get(key)
        if scratch is None or scratch.capacity < total:
            grown = max(total, 2 * scratch.capacity if scratch is not None else 0)
            scratch = PackScratch(model, backend, kernel, config, grown)
            scratch_map[key] = scratch

        rng_block = scratch.rng
        for cell in cells:
            seg = segments[cell.seg]
            gpu = seg.gpu
            scratch.x_init[cell.start : cell.stop] = gpu.block_x[cell.rows]
            rng_block[cell.start : cell.stop] = gpu.rng_state[cell.rows]
            scratch.targets[cell.start : cell.stop] = seg.batch.vectors[cell.rows]

        state, tabu, tracker = scratch.window(0, total)
        state.reset(scratch.x_init[:total])
        scratch.last_span = (0, total)
        tabu.stamps.fill(-(config.tabu_period + 1))
        tabu.clock[...] = 0
        tracker.reset(state)
        tracker.fold(state)
        clock = scratch.tabu.clock

        def views(a, b):
            st, tb, tr = scratch.window(a, b)
            if scratch.last_span != (a, b):
                backend._invalidate_derived(st)
                scratch.last_span = (a, b)
            return st, tb, tr

        flips = np.zeros(total, dtype=np.int64)
        budget = config.batch_budget(n)
        main_iters = config.main_iterations(n)

        def fix_clock(span_cells, a, pre, f):
            # a cell's solo clock advances by *its* phase length — the max
            # per-row flip count, since straight/greedy flips are
            # consecutive from the phase start (rows never reactivate)
            for cell in span_cells:
                local = slice(cell.start - a, cell.stop - a)
                clock[cell.start : cell.stop] = pre[local] + int(
                    f[local].max(initial=0)
                )

        # straight phase: every cell at once (no cell finishes before it)
        st, tb, tr = views(0, total)
        pre = tb.clock.copy()
        f = backend.run_straight_phase(st, scratch.targets[:total], tb, tr)
        flips += f
        fix_clock(cells, 0, pre, f)

        while True:
            for a, b, span_cells in _spans(cells):
                st, tb, tr = views(a, b)
                pre = tb.clock.copy()
                f, truncated = backend.run_greedy_phase(st, tb, tr)
                tr.greedy_truncated |= truncated
                flips[a:b] += f
                fix_clock(span_cells, a, pre, f)
            for cell in cells:
                if cell.done:
                    continue
                if cell.alg == MainAlgorithm.TWONEIGHBOR:
                    # TwoNeighbor runs exactly greedy → main → greedy
                    cell.done = cell.mains_done >= 1
                else:
                    cell.done = bool(
                        np.all(flips[cell.start : cell.stop] >= budget)
                    )
            if all(cell.done for cell in cells):
                break
            for a, b, span_cells in _spans(cells, same_alg=True):
                alg_enum = span_cells[0].alg
                alg = segments[span_cells[0].seg].gpu.algorithms[alg_enum]
                st, tb, tr = views(a, b)
                if alg_enum == MainAlgorithm.TWONEIGHBOR:
                    iterations = alg.num_iterations(n)
                else:
                    iterations = main_iters
                spec = alg.lower(st, iterations)
                if alg_enum == MainAlgorithm.CYCLICMIN:
                    # the window cursor is device-persistent per cell: seed
                    # each cell's merged slice from its own device instance
                    # on first use (committed back at harvest)
                    for cell in span_cells:
                        if not cell.cursor_ready:
                            inst = segments[cell.seg].gpu.algorithms[alg_enum]
                            scratch.cursor[cell.start : cell.stop] = (
                                inst.export_cursor(cell.size)
                            )
                            cell.cursor_ready = True
                    spec = replace(spec, cursor=scratch.cursor[a:b])
                rng_w = XorShift64Star.view(rng_block[a:b])
                f = backend.run_main_phase(st, spec, iterations, rng_w, tb, tr)
                flips[a:b] += f
                for cell in span_cells:
                    cell.mains_done += 1

        # harvest: split per segment and commit device state (all-or-nothing)
        by_segment: list[list[_Cell]] = [[] for _ in segments]
        for cell in cells:
            by_segment[cell.seg].append(cell)
        results = []
        for si, seg in enumerate(segments):
            batch = seg.batch
            gpu = seg.gpu
            out_vectors = np.empty_like(batch.vectors)
            out_energies = np.empty(len(batch), dtype=np.int64)
            seg_flips = np.zeros(len(batch), dtype=np.int64)
            trunc = np.zeros(len(batch), dtype=bool)
            new_x = np.empty_like(gpu.block_x)
            new_rng = np.empty_like(gpu.rng_state)
            for cell in by_segment[si]:
                sl = slice(cell.start, cell.stop)
                out_vectors[cell.rows] = tracker.best_x[sl]
                out_energies[cell.rows] = tracker.best_energy[sl]
                seg_flips[cell.rows] = flips[sl]
                trunc[cell.rows] = tracker.greedy_truncated[sl]
                new_x[cell.rows] = state.x[sl]
                new_rng[cell.rows] = rng_block[sl]
                if cell.cursor_ready:
                    gpu.algorithms[cell.alg].import_cursor(scratch.cursor[sl])
            truncations = int(trunc.sum())
            gpu.commit_packed(new_x, new_rng, int(seg_flips.sum()), truncations)
            results.append(
                SegmentResult(
                    seg,
                    PacketBatch(
                        out_vectors, out_energies, batch.algorithms, batch.operations
                    ),
                    seg_flips,
                    truncations,
                    1 if truncations else 0,
                )
            )
        return results
