"""The asynchronous per-device execution engine: no global round barrier.

The paper's defining systems idea is that each GPU runs *asynchronously*:
its host thread fetches parents from the shared pool, launches a bulk
search, and folds solutions back at the device's own pace — one slow
device never stalls the fleet.  :class:`AsyncEngine` is that event loop
for the virtual GPUs.  It owns no solver policy; a *driver* (implemented
by the solver, see :class:`EngineDriver` for the contract) supplies
batches and absorbs completions, while the engine does slot accounting,
submission, completion-order merging, and draining over a
:mod:`~repro.engine.workers` worker group.

Two schedules:

* **free-running** (``driver.virtual_time == False``) — the throughput
  path.  Every device keeps up to ``depth`` launches in flight; each
  completion is collected the moment it arrives (pool insertion
  as-of-arrival) and immediately back-fills that device's slot with a
  batch generated from the pools *as they are now*.  No barrier exists
  anywhere; completion order (and therefore pool content) depends on
  device timing.
* **virtual time** (``driver.virtual_time == True``) — the determinism
  path.  Completions are merged in ``(launch_seq, device_id)`` order and
  the host-side schedule (generation draw order, pool snapshots,
  insertion order, restart points) replays the round scheduler exactly,
  so results are bit-identical to the sequential scheduler while launches
  still run concurrently on the workers.  When the run is purely
  launch-budgeted (``driver.can_pipeline``), a device's next launch is
  submitted the moment its previous one completes — ahead of slower
  devices — which pipelines rounds without breaking the replay.

The engine is context-managed: ``close()`` (or leaving the ``with`` block,
including via an exception) closes the worker group, joining every worker
thread/process.
"""

from __future__ import annotations

from typing import Protocol

from repro.core.packet import PacketBatch
from repro.engine.workers import LaunchCompletion

__all__ = ["AsyncEngine", "EngineDriver"]

#: seconds between liveness/time-limit checks while waiting on completions
_POLL_INTERVAL = 0.02


class EngineDriver(Protocol):
    """What a solver must provide to run on the engine.

    The driver owns all solver policy — generation RNG streams, pool
    insertion, best/history tracking, termination and restart decisions —
    and must be touched only from the engine's caller thread (the engine
    never calls it concurrently).
    """

    #: True → deterministic virtual-time replay; False → free-running
    virtual_time: bool
    #: True when the virtual-time run can pipeline round ``r+1`` launches
    #: behind round ``r`` (no reactive limit can cancel work in flight)
    can_pipeline: bool

    # -- free-running hooks ------------------------------------------------
    def next_batch(self, device_id: int) -> PacketBatch | None:
        """A fresh batch for *device_id* (as-of-now pools), or None when
        that device's launch budget is exhausted / the run is stopping."""

    def collect(self, completion: LaunchCompletion) -> str:
        """Absorb one completion; returns "continue", "stop" or "restart"."""

    def idle(self) -> str:
        """Called while waiting on completions; "stop" ends submission."""

    def halt(self) -> None:
        """The engine stopped submitting; remaining completions drain."""

    # -- virtual-time hooks ------------------------------------------------
    def generate_round(self) -> list[PacketBatch]:
        """One batch per device from the shared host RNG (round order)."""

    def record_round(self, batches: list[PacketBatch]) -> None:
        """Round submitted — record strategy counters."""

    def wants_round(self, round_index: int) -> bool:
        """True while the launch budget allows *round_index*."""

    def collect_ordered(self, completion: LaunchCompletion) -> None:
        """Absorb one completion (engine guarantees (seq, device) order)."""

    def finish_round(self, round_index: int) -> str:
        """All of round *round_index* collected; returns "continue",
        "stop" or "restart" (driver already reinitialized the pools)."""


class AsyncEngine:
    """Completion-driven execution of one solve over a worker group."""

    def __init__(self, group, depth: int = 2) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.group = group
        self.depth = depth
        self._closed = False

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Close the worker group (joins all workers).  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self.group.close()

    def __enter__(self) -> "AsyncEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- entry point -------------------------------------------------------
    def run(self, driver: EngineDriver) -> None:
        """Drive one solve to completion (all submitted launches drained)."""
        if driver.virtual_time:
            self._run_virtual_time(driver)
        else:
            self._run_free(driver)

    # -- free-running schedule ---------------------------------------------
    def _run_free(self, driver: EngineDriver) -> None:
        group = self.group
        num_devices = group.num_devices
        inflight = [0] * num_devices
        seqs = [0] * num_devices
        stopped = False

        def refill(device_id: int) -> None:
            while inflight[device_id] < self.depth:
                batch = driver.next_batch(device_id)
                if batch is None:
                    return
                seqs[device_id] += 1
                group.submit(device_id, seqs[device_id], batch)
                inflight[device_id] += 1

        for device_id in range(num_devices):
            refill(device_id)
        while sum(inflight):
            completion = group.next_completion(_POLL_INTERVAL)
            if completion is None:
                if not stopped and driver.idle() == "stop":
                    stopped = True
                    driver.halt()
                continue
            inflight[completion.device_id] -= 1
            action = driver.collect(completion)
            if stopped:
                continue  # draining: absorb results, submit nothing
            if action == "stop":
                stopped = True
                driver.halt()
                continue
            if action == "restart":
                # queued behind each device's in-flight launches; results
                # of pre-restart launches still land in the fresh pools
                # (the restart is advisory in free-running mode)
                for device_id in range(num_devices):
                    group.reset_device(device_id)
            refill(completion.device_id)

    # -- virtual-time schedule ---------------------------------------------
    def _run_virtual_time(self, driver: EngineDriver) -> None:
        group = self.group
        num_devices = group.num_devices
        #: completions that outran the round being merged, keyed (dev, seq)
        stash: dict[tuple[int, int], LaunchCompletion] = {}
        submitted: set[tuple[int, int]] = set()
        next_batches = driver.generate_round()
        round_index = 0
        while True:
            round_index += 1
            batches = next_batches
            for device_id in range(num_devices):
                if (device_id, round_index) not in submitted:
                    group.submit(device_id, round_index, batches[device_id])
                    submitted.add((device_id, round_index))
            driver.record_round(batches)
            want_next = driver.wants_round(round_index + 1)
            if want_next:
                # generated while round r is in flight — reads the pools
                # as of round r−1, exactly like the double-buffered
                # round scheduler
                next_batches = driver.generate_round()
            pipeline = want_next and driver.can_pipeline

            def start_next(device_id: int) -> None:
                if pipeline and (device_id, round_index + 1) not in submitted:
                    group.submit(
                        device_id, round_index + 1, next_batches[device_id]
                    )
                    submitted.add((device_id, round_index + 1))

            results: dict[int, LaunchCompletion] = {}
            for device_id in range(num_devices):
                early = stash.pop((device_id, round_index), None)
                if early is not None:
                    results[device_id] = early
                    start_next(device_id)
            while len(results) < num_devices:
                completion = group.next_completion(_POLL_INTERVAL)
                if completion is None:
                    continue
                if completion.seq == round_index:
                    results[completion.device_id] = completion
                    start_next(completion.device_id)
                else:
                    stash[(completion.device_id, completion.seq)] = completion
            # merge strictly in device order — the round scheduler's
            # insertion order, which fixes pool content bit-exactly
            for device_id in range(num_devices):
                driver.collect_ordered(results[device_id])
            verdict = driver.finish_round(round_index)
            if verdict == "stop":
                return
            if verdict == "restart":
                # nothing is in flight here (restarts disable pipelining),
                # so the reset lands before the regenerated round
                for device_id in range(num_devices):
                    group.reset_device(device_id)
                next_batches = driver.generate_round()
            submitted = {key for key in submitted if key[1] > round_index}
