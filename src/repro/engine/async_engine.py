"""The asynchronous per-device execution engine: no global round barrier.

The paper's defining systems idea is that each GPU runs *asynchronously*:
its host thread fetches parents from the shared pool, launches a bulk
search, and folds solutions back at the device's own pace — one slow
device never stalls the fleet.  :class:`AsyncEngine` is that event loop
for the virtual GPUs.  It owns no solver policy; a *driver* (implemented
by the solver, see :class:`EngineDriver` for the contract) supplies
batches and absorbs completions, while the engine does slot accounting,
submission, completion-order merging, and draining over a
:mod:`~repro.engine.workers` worker group.

Two schedules:

* **free-running** (``driver.virtual_time == False``) — the throughput
  path.  Every device keeps up to ``depth`` launches in flight; each
  completion is collected the moment it arrives (pool insertion
  as-of-arrival) and immediately back-fills that device's slot with a
  batch generated from the pools *as they are now*.  No barrier exists
  anywhere; completion order (and therefore pool content) depends on
  device timing.
* **virtual time** (``driver.virtual_time == True``) — the determinism
  path.  Completions are merged in ``(launch_seq, device_id)`` order and
  the host-side schedule (generation draw order, pool snapshots,
  insertion order, restart points) replays the round scheduler exactly,
  so results are bit-identical to the sequential scheduler while launches
  still run concurrently on the workers.  When the run is purely
  launch-budgeted (``driver.can_pipeline``), a device's next launch is
  submitted the moment its previous one completes — ahead of slower
  devices — which pipelines rounds without breaking the replay.

The engine is context-managed: ``close()`` (or leaving the ``with`` block,
including via an exception) closes the worker group, joining every worker
thread/process.
"""

from __future__ import annotations

from typing import Protocol

from repro.core.packet import PacketBatch
from repro.engine.workers import LaunchCompletion

__all__ = ["AsyncEngine", "EngineDriver", "VirtualTimeReplay"]

#: seconds between liveness/time-limit checks while waiting on completions
_POLL_INTERVAL = 0.02


class EngineDriver(Protocol):
    """What a solver must provide to run on the engine.

    The driver owns all solver policy — generation RNG streams, pool
    insertion, best/history tracking, termination and restart decisions —
    and must be touched only from the engine's caller thread (the engine
    never calls it concurrently).
    """

    #: True → deterministic virtual-time replay; False → free-running
    virtual_time: bool
    #: True when the virtual-time run can pipeline round ``r+1`` launches
    #: behind round ``r`` (no reactive limit can cancel work in flight)
    can_pipeline: bool

    # -- free-running hooks ------------------------------------------------
    def next_batch(self, device_id: int) -> PacketBatch | None:
        """A fresh batch for *device_id* (as-of-now pools), or None when
        that device's launch budget is exhausted / the run is stopping."""

    def collect(self, completion: LaunchCompletion) -> str:
        """Absorb one completion; returns "continue", "stop" or "restart"."""

    def idle(self) -> str:
        """Called while waiting on completions; "stop" ends submission."""

    def halt(self) -> None:
        """The engine stopped submitting; remaining completions drain."""

    # -- virtual-time hooks ------------------------------------------------
    def generate_round(self) -> list[PacketBatch]:
        """One batch per device from the shared host RNG (round order)."""

    def record_round(self, batches: list[PacketBatch]) -> None:
        """Round submitted — record strategy counters."""

    def wants_round(self, round_index: int) -> bool:
        """True while the launch budget allows *round_index*."""

    def collect_ordered(self, completion: LaunchCompletion) -> None:
        """Absorb one completion (engine guarantees (seq, device) order)."""

    def finish_round(self, round_index: int) -> str:
        """All of round *round_index* collected; returns "continue",
        "stop" or "restart" (driver already reinitialized the pools)."""


class VirtualTimeReplay:
    """The virtual-time schedule as an event-driven state machine.

    One canonical implementation of the determinism path: generate round
    *r+1* while *r* flies, merge completions in ``(launch_seq, device)``
    order, collect device-ordered, pipeline pure launch budgets, and
    sequence §IV.B restarts before the regenerated round.  The engine's
    blocking loop drives it directly; the multi-tenant service
    (DESIGN.md §8) advances the same machine one completion at a time
    between other tenants' work — which is why a virtual-time service
    job is bit-exact with a direct solve.

    Protocol: the owner drains :attr:`pending` via :meth:`take_pending`
    (submitting each ``(seq, batch)`` on the device's FIFO lane), feeds
    every arriving completion to :meth:`on_completion`, and — *before*
    submitting newly pending launches — queues device resets whenever
    :meth:`take_reset_request` reports a restart.  :attr:`stopped` means
    no further launches will be produced.
    """

    def __init__(self, driver: EngineDriver) -> None:
        self.driver = driver
        self.num_devices = driver.num_devices
        self.round = 0
        self.stopped = False
        #: device → (seq, batch) ready for its lane
        self.pending: dict[int, tuple[int, PacketBatch]] = {}
        self._results: dict[int, LaunchCompletion] = {}
        self._stash: dict[tuple[int, int], LaunchCompletion] = {}
        self._submitted: set[tuple[int, int]] = set()
        self._reset_due = False
        self._next_batches = driver.generate_round()
        self._begin_round()

    def _begin_round(self) -> None:
        self.round += 1
        batches = self._next_batches
        for device_id in range(self.num_devices):
            if (device_id, self.round) not in self._submitted:
                self.pending[device_id] = (self.round, batches[device_id])
        self.driver.record_round(batches)
        want_next = self.driver.wants_round(self.round + 1)
        if want_next:
            # generated while round r is in flight — reads the pools as of
            # round r−1, exactly like the double-buffered round scheduler
            self._next_batches = self.driver.generate_round()
        else:
            self._next_batches = None
        self._pipeline = want_next and self.driver.can_pipeline
        for device_id in range(self.num_devices):
            early = self._stash.pop((device_id, self.round), None)
            if early is not None:
                self._land(early)

    def take_pending(self, device_id: int) -> tuple[int, PacketBatch] | None:
        """Hand the device's ready launch to its lane (marks submitted)."""
        entry = self.pending.pop(device_id, None)
        if entry is not None:
            self._submitted.add((device_id, entry[0]))
        return entry

    def halt(self) -> None:
        """Stop the replay (cancellation): pending launches are dropped
        and any in-flight completions will be discarded by the caller."""
        self.stopped = True
        self.pending.clear()

    def take_reset_request(self) -> bool:
        """True once per §IV.B restart; the caller must queue device
        resets on the lanes before the regenerated round goes out."""
        due = self._reset_due
        self._reset_due = False
        return due

    def on_completion(self, completion: LaunchCompletion) -> None:
        if completion.seq == self.round:
            self._land(completion)
        else:
            self._stash[(completion.device_id, completion.seq)] = completion

    def _land(self, completion: LaunchCompletion) -> None:
        self._results[completion.device_id] = completion
        if self._pipeline:
            device_id = completion.device_id
            if (device_id, self.round + 1) not in self._submitted:
                self.pending[device_id] = (
                    self.round + 1,
                    self._next_batches[device_id],
                )
        if len(self._results) == self.num_devices:
            self._finish_round()

    def _finish_round(self) -> None:
        # merge strictly in device order — the round scheduler's insertion
        # order, which fixes pool content bit-exactly
        for device_id in range(self.num_devices):
            self.driver.collect_ordered(self._results[device_id])
        self._results = {}
        verdict = self.driver.finish_round(self.round)
        self._submitted = {
            key for key in self._submitted if key[1] > self.round
        }
        if verdict == "stop":
            self.halt()
            return
        if verdict == "restart":
            # nothing is in flight here (restarts disable pipelining), so
            # the caller's queued resets land before the regenerated round
            self._reset_due = True
            self._next_batches = self.driver.generate_round()
        self._begin_round()


class AsyncEngine:
    """Completion-driven execution of one solve over a worker group."""

    def __init__(self, group, depth: int = 2) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.group = group
        self.depth = depth
        self._closed = False

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Close the worker group (joins all workers).  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self.group.close()

    def __enter__(self) -> "AsyncEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- entry point -------------------------------------------------------
    def run(self, driver: EngineDriver) -> None:
        """Drive one solve to completion (all submitted launches drained)."""
        if driver.virtual_time:
            self._run_virtual_time(driver)
        else:
            self._run_free(driver)

    # -- free-running schedule ---------------------------------------------
    def _run_free(self, driver: EngineDriver) -> None:
        group = self.group
        num_devices = group.num_devices
        inflight = [0] * num_devices
        seqs = [0] * num_devices
        stopped = False

        def refill(device_id: int) -> None:
            while inflight[device_id] < self.depth:
                batch = driver.next_batch(device_id)
                if batch is None:
                    return
                seqs[device_id] += 1
                group.submit(device_id, seqs[device_id], batch)
                inflight[device_id] += 1

        for device_id in range(num_devices):
            refill(device_id)
        while sum(inflight):
            completion = group.next_completion(_POLL_INTERVAL)
            if completion is None:
                if not stopped and driver.idle() == "stop":
                    stopped = True
                    driver.halt()
                continue
            inflight[completion.device_id] -= 1
            action = driver.collect(completion)
            if stopped:
                continue  # draining: absorb results, submit nothing
            if action == "stop":
                stopped = True
                driver.halt()
                continue
            if action == "restart":
                # queued behind each device's in-flight launches; results
                # of pre-restart launches still land in the fresh pools
                # (the restart is advisory in free-running mode)
                for device_id in range(num_devices):
                    group.reset_device(device_id)
            refill(completion.device_id)

    # -- virtual-time schedule ---------------------------------------------
    def _run_virtual_time(self, driver: EngineDriver) -> None:
        """Drive the shared :class:`VirtualTimeReplay` state machine with
        blocking waits — the single-tenant owner of the replay protocol
        (the multi-tenant service is the other one)."""
        group = self.group
        replay = VirtualTimeReplay(driver)
        inflight = 0
        while True:
            if replay.take_reset_request():
                # resets queue behind in-flight launches and ahead of the
                # regenerated round submitted below
                for device_id in range(group.num_devices):
                    group.reset_device(device_id)
            for device_id in range(group.num_devices):
                entry = replay.take_pending(device_id)
                if entry is not None:
                    group.submit(device_id, entry[0], entry[1])
                    inflight += 1
            if replay.stopped and inflight == 0:
                return
            completion = group.next_completion(_POLL_INTERVAL)
            if completion is None:
                continue
            inflight -= 1
            if not replay.stopped:
                replay.on_completion(completion)
