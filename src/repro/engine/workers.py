"""Device workers: one free-running execution lane per virtual GPU.

The paper drives every physical GPU from its own host thread; a device
fetches work, runs a bulk search, and returns solutions at its own pace
(§III.C).  A *worker group* reproduces that seam for the virtual GPUs:

* :class:`ThreadWorkerGroup` — one single-thread executor per device.
  The per-device FIFO is what gives each device in-flight depth (a launch
  can be queued behind the running one) while NumPy/numba kernels release
  the GIL, so lanes genuinely overlap.
* :class:`ProcessWorkerGroup` — one forked child process per device,
  exchanging whole :class:`~repro.core.packet.PacketBatch` columns through
  :class:`~repro.core.packet.SharedBatchSlab` shared-memory slots.  Only a
  tiny ``(kind, seq, slot)`` tuple crosses the queue — no array is ever
  pickled — so the engine sidesteps the GIL entirely for backends whose
  kernels hold it (the numba JIT path).

Both groups push :class:`LaunchCompletion` records onto one host-side
completion stream; the engine consumes them with
:meth:`~WorkerGroup.next_completion` in whatever order devices finish.
Failures travel the same stream and surface as :class:`WorkerError` on the
host, so a dead device can never strand the event loop.

Lifecycle: groups are context managers and :meth:`~WorkerGroup.close` is
idempotent; closing joins every thread/process (terminating stuck children)
so a solve that raises mid-flight leaks nothing.
"""

from __future__ import annotations

import multiprocessing
import queue
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.packet import PacketBatch, SharedBatchSlab

__all__ = [
    "LaunchCompletion",
    "ProcessWorkerGroup",
    "ThreadWorkerGroup",
    "WorkerError",
]

#: thread-name / process-name prefix, asserted by the leak regression tests
WORKER_NAME_PREFIX = "engine-vgpu"


class WorkerError(RuntimeError):
    """A device worker failed; carries the device id and its traceback."""

    def __init__(self, device_id: int, detail: str) -> None:
        super().__init__(f"device worker {device_id} failed:\n{detail}")
        self.device_id = device_id
        self.detail = detail


@dataclass(frozen=True)
class LaunchCompletion:
    """One finished launch, as delivered to the host event loop."""

    #: which virtual GPU produced it
    device_id: int
    #: per-device launch sequence number (1-based, FIFO per device)
    seq: int
    #: result batch (best vector/energy per lane, strategies passed through)
    batch: PacketBatch
    #: per-lane flip counts of the launch
    flips: np.ndarray
    #: greedy-cap truncated rows in this launch (delta, not cumulative)
    truncations: int
    #: 1 when this launch emitted a GreedyTruncationWarning, else 0
    truncation_events: int


class _Failure:
    """Internal: an exception crossing the completion stream."""

    __slots__ = ("device_id", "detail")

    def __init__(self, device_id: int, detail: str) -> None:
        self.device_id = device_id
        self.detail = detail


class ThreadWorkerGroup:
    """One single-thread executor per device over the solver's own GPUs.

    Device state (block solutions, RNG lanes, counters) stays in the
    parent's :class:`~repro.gpu.virtual_gpu.VirtualGPU` objects, so it
    persists across ``solve()`` calls exactly like the round scheduler.
    """

    def __init__(self, gpus) -> None:
        self.gpus = list(gpus)
        self._completions: queue.Queue = queue.Queue()
        self._executors = [
            ThreadPoolExecutor(
                max_workers=1, thread_name_prefix=f"{WORKER_NAME_PREFIX}{i}"
            )
            for i in range(len(self.gpus))
        ]
        self._closed = False

    @property
    def num_devices(self) -> int:
        return len(self.gpus)

    def submit(self, device_id: int, seq: int, batch: PacketBatch) -> None:
        """Queue one launch on *device_id*'s FIFO lane."""
        self._executors[device_id].submit(self._run, device_id, seq, batch)

    def reset_device(self, device_id: int) -> None:
        """Queue a device reset behind that device's in-flight launches."""
        self._executors[device_id].submit(self.gpus[device_id].reset)

    def _run(self, device_id: int, seq: int, batch: PacketBatch) -> None:
        try:
            gpu = self.gpus[device_id]
            trunc0 = gpu.greedy_truncations
            events0 = gpu.truncation_events
            result, flips = gpu.launch(batch)
            self._completions.put(
                LaunchCompletion(
                    device_id,
                    seq,
                    result,
                    flips,
                    gpu.greedy_truncations - trunc0,
                    gpu.truncation_events - events0,
                )
            )
        except BaseException:
            self._completions.put(_Failure(device_id, traceback.format_exc()))

    def next_completion(self, timeout: float) -> LaunchCompletion | None:
        """The next finished launch, in completion order; None on timeout."""
        try:
            item = self._completions.get(timeout=timeout)
        except queue.Empty:
            return None
        if isinstance(item, _Failure):
            raise WorkerError(item.device_id, item.detail)
        return item

    def close(self) -> None:
        """Join every worker thread; queued-but-unstarted launches are
        dropped.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for executor in self._executors:
            executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ThreadWorkerGroup":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _device_worker_main(device_id, gpu, task_queue, result_queue, slabs):
    """Child-process main loop: launch slots until told to stop.

    Runs in a fork of the parent taken at group construction, so ``gpu``
    (and the backend kernel cache inside it) arrives by memory inheritance
    — nothing is pickled.  Batches arrive and results leave through the
    fork-shared :class:`SharedBatchSlab` pages; the queues carry only
    ``(kind, seq, slot)`` control tuples.
    """
    try:
        while True:
            message = task_queue.get()
            kind = message[0]
            if kind == "stop":
                return
            if kind == "reset":
                gpu.reset()
                continue
            _, seq, slot = message
            slab = slabs[slot]
            trunc0 = gpu.greedy_truncations
            events0 = gpu.truncation_events
            result, flips = gpu.launch(slab.batch())
            slab.store_result(result, flips)
            result_queue.put(
                (
                    "done",
                    device_id,
                    seq,
                    slot,
                    gpu.greedy_truncations - trunc0,
                    gpu.truncation_events - events0,
                )
            )
    except BaseException:
        result_queue.put(("error", device_id, traceback.format_exc()))


class _ProcessWorker:
    """Host-side record of one device child: process, queue, slab slots."""

    __slots__ = ("process", "task_queue", "slabs", "free_slots")

    def __init__(self, process, task_queue, slabs) -> None:
        self.process = process
        self.task_queue = task_queue
        self.slabs = slabs
        self.free_slots = list(range(len(slabs)))


class ProcessWorkerGroup:
    """One forked child process per device over shared-memory batch slots.

    Requires the ``fork`` start method (the slabs and the device state are
    inherited, never pickled).  Device state lives in the children, so —
    unlike the thread group — it does not persist into a later ``solve()``
    call on the same solver; each group starts from the state captured at
    the fork.
    """

    def __init__(self, gpus, depth: int = 2) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        gpus = list(gpus)
        if "fork" not in multiprocessing.get_all_start_methods():
            raise WorkerError(
                -1, "process workers need the fork start method (POSIX only)"
            )
        ctx = multiprocessing.get_context("fork")
        self._result_queue = ctx.Queue()
        self._workers: list[_ProcessWorker] = []
        self._closed = False
        try:
            for device_id, gpu in enumerate(gpus):
                slabs = [
                    SharedBatchSlab(gpu.num_blocks, gpu.model.n)
                    for _ in range(depth)
                ]
                task_queue = ctx.Queue()
                process = ctx.Process(
                    target=_device_worker_main,
                    args=(device_id, gpu, task_queue, self._result_queue, slabs),
                    name=f"{WORKER_NAME_PREFIX}{device_id}",
                    daemon=True,
                )
                process.start()
                self._workers.append(_ProcessWorker(process, task_queue, slabs))
        except BaseException:
            self.close()
            raise

    @property
    def num_devices(self) -> int:
        return len(self._workers)

    def submit(self, device_id: int, seq: int, batch: PacketBatch) -> None:
        """Write *batch* into a free shared slot and wake the child."""
        worker = self._workers[device_id]
        if not worker.free_slots:
            raise WorkerError(
                device_id, "no free launch slot (in-flight depth exceeded)"
            )
        slot = worker.free_slots.pop()
        worker.slabs[slot].store(batch)
        worker.task_queue.put(("launch", seq, slot))

    def reset_device(self, device_id: int) -> None:
        """Queue a device reset behind that device's in-flight launches."""
        self._workers[device_id].task_queue.put(("reset",))

    def next_completion(self, timeout: float) -> LaunchCompletion | None:
        """The next finished launch from any child; None on timeout.

        Result columns are snapshotted out of the shared slot so the slot
        can be reused by the very next submission.
        """
        try:
            message = self._result_queue.get(timeout=timeout)
        except queue.Empty:
            self._check_alive()
            return None
        if message[0] == "error":
            raise WorkerError(message[1], message[2])
        _, device_id, seq, slot, truncations, events = message
        worker = self._workers[device_id]
        batch, flips = worker.slabs[slot].snapshot()
        worker.free_slots.append(slot)
        return LaunchCompletion(device_id, seq, batch, flips, truncations, events)

    def _check_alive(self) -> None:
        """Raise when a child died without posting an error message."""
        for device_id, worker in enumerate(self._workers):
            process = worker.process
            if not process.is_alive() and process.exitcode not in (0, None):
                raise WorkerError(
                    device_id,
                    f"device worker process died (exit code {process.exitcode})",
                )

    def close(self) -> None:
        """Stop and reap every child process.  Idempotent.

        Children get a stop sentinel and a grace period; ones still alive
        (stuck kernels, queued work) are terminated — the anonymous-mmap
        slabs free themselves when the last mapping drops.
        """
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.task_queue.put(("stop",))
            except (OSError, ValueError):  # queue already torn down
                pass
        for worker in self._workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
        for worker in self._workers:
            worker.task_queue.close()
            worker.task_queue.cancel_join_thread()
        self._result_queue.close()
        self._result_queue.cancel_join_thread()

    def __enter__(self) -> "ProcessWorkerGroup":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
