"""Device workers: one free-running execution lane per virtual GPU.

The paper drives every physical GPU from its own host thread; a device
fetches work, runs a bulk search, and returns solutions at its own pace
(§III.C).  A *worker group* reproduces that seam for the virtual GPUs:

* :class:`FleetWorkerGroup` — one single-thread executor per *lane*, not
  bound to any solver's devices: each submission names the virtual GPU to
  run, and completions carry an opaque ``tag`` routed back to the caller.
  This is the multi-tenant seam (DESIGN.md §8): a
  :class:`~repro.service.SolveService` owns one fleet and multiplexes many
  jobs' launches over it, with the tag identifying the owning job.
* :class:`ThreadWorkerGroup` — a fleet bound to one solver's GPU list
  (lane *i* always runs ``gpus[i]``), the single-tenant configuration the
  async engine drives.  The per-device FIFO is what gives each device
  in-flight depth (a launch can be queued behind the running one) while
  NumPy/numba kernels release the GIL, so lanes genuinely overlap.
* :class:`ProcessWorkerGroup` — one forked child process per device,
  exchanging whole :class:`~repro.core.packet.PacketBatch` columns through
  :class:`~repro.core.packet.SharedBatchSlab` shared-memory slots.  Only a
  tiny control tuple crosses the queue — no array is ever pickled — so the
  engine sidesteps the GIL entirely for backends whose kernels hold it
  (the numba JIT path).

Both groups push :class:`LaunchCompletion` records onto one host-side
completion stream; the engine consumes them with
:meth:`~WorkerGroup.next_completion` in whatever order devices finish.
Failures travel the same stream and surface as :class:`WorkerError` on the
host, so a dead device can never strand the event loop.

Supervision (DESIGN.md §11): with a
:class:`~repro.resilience.RetryPolicy` the groups become *supervised* —
every launch is recorded as a ticketed ``(lane, device, seq, batch)``
in-flight entry, and a fault (worker exception, dead child process, hung
launch past ``launch_timeout``) re-issues the recorded launch on a fresh
lane/child after capped exponential backoff instead of failing the solve.
The re-issue replays the identical batch at the identical per-device
sequence number, so ``virtual_time`` replay stays bit-exact whenever the
fault pre-empted the launch (chaos injection, a killed worker) and
free-running results stay valid in every case.  Once ``max_retries`` or
the per-job ``failure_budget`` is exhausted, the fault surfaces as a
:class:`WorkerError` carrying a structured
:class:`~repro.resilience.FailureReport` — failing only the owning job.

Hangs differ between the two worker kinds.  A hung child *process* is
terminated before its launches are re-issued, so the re-issue never
races the old worker.  A hung lane *thread* cannot be killed, so the
thread fleet quarantines instead: the lane executor is replaced at once
(co-tenants keep running) and a reaper waits for the abandoned thread
to actually exit before settling its launches — a late completion is
delivered as merely slow, a launch the thread never ran is re-issued,
and only a thread that outlives ``hang_grace`` fails its launch (the
device state it still owns is never handed to a second thread).

Lifecycle: groups are context managers and :meth:`~WorkerGroup.close` is
idempotent; closing joins every thread/process, escalating from a stop
sentinel through ``terminate()`` to ``kill()`` for stuck children, so a
solve that raises mid-flight leaks nothing.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue
import threading
import time
import traceback
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.packet import PacketBatch, SharedBatchSlab
from repro.engine.coalesce import SuperLaunch
from repro.resilience import chaos
from repro.resilience.chaos import ChaosError
from repro.resilience.policy import FailureReport, RetryPolicy

__all__ = [
    "FleetWorkerGroup",
    "LaunchCompletion",
    "ProcessWorkerGroup",
    "ThreadWorkerGroup",
    "WorkerError",
]

#: thread-name / process-name prefix, asserted by the leak regression tests
WORKER_NAME_PREFIX = "engine-vgpu"

#: exit code a chaos ``worker_kill`` child death uses (tests assert it)
CHAOS_EXIT_CODE = 17


class WorkerError(RuntimeError):
    """A device worker failed; carries the device id and its traceback.

    ``tag`` is the opaque submission tag of the failed launch (None for
    untagged single-tenant groups) — the service uses it to fail only the
    owning job instead of the whole fleet.  ``report`` is the structured
    :class:`~repro.resilience.FailureReport` when a supervised group
    exhausted its retry policy (None on unsupervised failures).
    """

    def __init__(
        self,
        device_id: int,
        detail: str,
        tag: object = None,
        report: FailureReport | None = None,
    ) -> None:
        super().__init__(f"device worker {device_id} failed:\n{detail}")
        self.device_id = device_id
        self.detail = detail
        self.tag = tag
        self.report = report


@dataclass(frozen=True)
class LaunchCompletion:
    """One finished launch, as delivered to the host event loop."""

    #: which virtual GPU produced it
    device_id: int
    #: per-device launch sequence number (1-based, FIFO per device)
    seq: int
    #: result batch (best vector/energy per lane, strategies passed through)
    batch: PacketBatch
    #: per-lane flip counts of the launch
    flips: np.ndarray
    #: greedy-cap truncated rows in this launch (delta, not cumulative)
    truncations: int
    #: 1 when this launch emitted a GreedyTruncationWarning, else 0
    truncation_events: int
    #: opaque submission tag (the service's job routing key); None for
    #: single-tenant groups
    tag: object = None


class _Failure:
    """Internal: an exception crossing the completion stream."""

    __slots__ = ("device_id", "detail", "tag")

    def __init__(self, device_id: int, detail: str, tag: object = None) -> None:
        self.device_id = device_id
        self.detail = detail
        self.tag = tag


class _LaunchRecord:
    """Host-side record of one in-flight launch — everything needed to
    re-issue it verbatim after a fault (same batch, same seq)."""

    __slots__ = (
        "lane",
        "device_id",
        "seq",
        "gpu",
        "batch",
        "tag",
        "slot",
        "attempts",
        "deadline",
        "failures",
        "done",
        "overdue",
    )

    def __init__(self, lane, device_id, seq, gpu, batch, tag, slot=None):
        self.lane = lane
        self.device_id = device_id
        self.seq = seq
        self.gpu = gpu
        self.batch = batch
        self.tag = tag
        self.slot = slot
        self.attempts = 1
        self.deadline = None
        self.failures: list[str] = []
        #: the worker posted this launch's outcome (set by the lane
        #: thread right before the put — a quarantine reaper reads it
        #: after joining the thread to tell "slow" from "never ran")
        self.done = False
        #: this record's own deadline had expired when its lane was
        #: quarantined (decides whether a re-issue is charged as a fault)
        self.overdue = False


def _fault_key(tag: object) -> object:
    """The per-job failure-budget key of a submission tag.

    Service tags are ``(job_id, device_id)`` tuples — the budget is per
    job, not per device.  Untagged single-tenant submissions share one
    ``None`` bucket (one solve per group there, so it is per-job too).
    """
    if isinstance(tag, tuple) and tag:
        return tag[0]
    return tag


class FleetWorkerGroup:
    """One single-thread executor per lane, shared by any number of tenants.

    A lane is an execution slot of the (virtual) machine, not a device of
    one solver: every submission names the :class:`VirtualGPU` to run, so
    launches of different jobs — each with its own device-resident state —
    interleave on the same lane at launch granularity.  The per-lane FIFO
    still serializes everything submitted to one lane, which is what lets
    a job pin its per-device state to a lane and keep depth > 1 launches
    in flight without locking.

    With *retry* the group is supervised: faults re-issue the recorded
    launch (fresh lane thread if the old one is hung) instead of raising,
    until the policy's budgets run out.
    """

    def __init__(self, num_lanes: int, retry: RetryPolicy | None = None) -> None:
        if num_lanes < 1:
            raise ValueError("num_lanes must be >= 1")
        self.retry = retry
        self._completions: queue.Queue = queue.Queue()
        self._executors = [self._make_executor(i) for i in range(num_lanes)]
        self._closed = False
        self._tickets = itertools.count(1)
        #: ticket -> in-flight record; a popped/absent ticket marks a
        #: superseded launch whose late completion must be dropped
        self._records: dict[int, _LaunchRecord] = {}
        self._records_lock = threading.Lock()
        #: lane -> submissions buffered while the lane's abandoned
        #: (possibly hung) executor is being reaped; flushed by the
        #: reaper so no two threads ever run the same gpu
        self._quarantine: dict[int, list[_LaunchRecord]] = {}
        self._timers: set[threading.Timer] = set()
        #: faults absorbed per job key (budget accounting)
        self._fault_counts: dict[object, int] = {}
        #: re-issues performed per job key (result annotation)
        self.retry_counts: dict[object, int] = {}
        #: total launches re-issued after a fault
        self.retries = 0
        #: lane executors replaced after a hang
        self.respawns = 0
        #: super-launch completions split but not yet delivered
        self._ready: deque = deque()
        #: lane -> merged pack buffers (only ever touched by that lane's
        #: single worker thread; dropped when a wedged thread may still
        #: own them)
        self._pack_scratch: dict[int, dict] = {}
        #: super-launches split back into individual launches after a fault
        self.pack_splits = 0

    @staticmethod
    def _make_executor(lane: int) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"{WORKER_NAME_PREFIX}{lane}"
        )

    @property
    def num_lanes(self) -> int:
        return len(self._executors)

    def submit_launch(
        self,
        lane: int,
        device_id: int,
        seq: int,
        gpu,
        batch: PacketBatch,
        tag: object = None,
    ) -> None:
        """Queue ``gpu.launch(batch)`` on *lane*'s FIFO.

        *device_id* and *seq* are the submitter's coordinates (a job's
        device index and per-device launch sequence) and are echoed back
        on the completion along with *tag*.
        """
        record = _LaunchRecord(lane, device_id, seq, gpu, batch, tag)
        self._submit_record(record)

    def submit_packed(self, lane: int, segments) -> None:
        """Queue a coalesced super-launch on *lane*'s FIFO (DESIGN.md §12).

        *segments* is a list of :class:`~repro.engine.coalesce.PackSegment`
        — pack-compatible launches of different jobs.  The lane executes
        them as one fused batch and the completion stream delivers one
        :class:`LaunchCompletion` per segment, carrying the segment's own
        ``(device_id, seq, tag)`` — callers cannot tell a packed launch
        from a solo one.  A failed pack is split: its segments are
        re-issued as individual launches without charging any job's fault
        budget (the culprit is unknown inside a fused batch; a persistent
        fault fails — and is charged — on the solo re-run).
        """
        pack = SuperLaunch(segments)
        record = _LaunchRecord(
            lane, segments[0].device_id, segments[0].seq, pack, None, None
        )
        self._submit_record(record)

    def _submit_record(self, record: _LaunchRecord) -> None:
        with self._records_lock:
            if self._closed:
                return
            record.done = False
            record.overdue = False
            pending = self._quarantine.get(record.lane)
            if pending is not None:  # lane awaiting its abandoned thread
                pending.append(record)
                return
            ticket = next(self._tickets)
            if self.retry is not None and self.retry.launch_timeout is not None:
                record.deadline = time.monotonic() + self.retry.launch_timeout
            self._records[ticket] = record
        self._executors[record.lane].submit(self._run, ticket)

    def run_on(self, lane: int, fn, tag: object = None) -> None:
        """Queue an arbitrary callable (e.g. a device reset) behind the
        lane's in-flight launches.

        Exceptions are routed onto the completion stream as
        :class:`WorkerError` (with *tag*) just like launch failures —
        never swallowed by the unchecked future.  Resets are not retried
        (they are idempotent and re-queued by the owner on demand).
        """
        self._executors[lane].submit(self._run_guarded, lane, fn, tag)

    def _run_guarded(self, lane: int, fn, tag) -> None:
        try:
            fn()
        except BaseException:
            self._completions.put(_Failure(lane, traceback.format_exc(), tag))

    def _run(self, ticket: int) -> None:
        with self._records_lock:
            record = self._records.get(ticket)
        if record is None:  # superseded before it started
            return
        try:
            gpu = record.gpu
            if isinstance(gpu, SuperLaunch):
                # worker-level chaos fires per segment, as each launch
                # would have seen solo (``who`` = that job's device index)
                for seg in gpu.segments:
                    if chaos.fire("worker_kill", who=seg.device_id):
                        raise ChaosError(
                            f"chaos: worker lane killed (device {seg.device_id})"
                        )
                    if chaos.fire("launch_exception", who=seg.device_id):
                        raise ChaosError(
                            f"chaos: injected launch exception "
                            f"(device {seg.device_id})"
                        )
                with self._records_lock:
                    scratch = self._pack_scratch.setdefault(record.lane, {})
                completions = [
                    LaunchCompletion(
                        res.segment.device_id,
                        res.segment.seq,
                        res.result,
                        res.flips,
                        res.truncations,
                        res.truncation_events,
                        res.segment.tag,
                    )
                    for res in gpu.run(scratch)
                ]
                record.done = True
                self._completions.put((ticket, completions))
                return
            if chaos.fire("worker_kill", who=record.device_id):
                raise ChaosError(
                    f"chaos: worker lane killed (device {record.device_id})"
                )
            if chaos.fire("launch_exception", who=record.device_id):
                raise ChaosError(
                    f"chaos: injected launch exception "
                    f"(device {record.device_id})"
                )
            trunc0 = gpu.greedy_truncations
            events0 = gpu.truncation_events
            result, flips = gpu.launch(record.batch)
            record.done = True
            self._completions.put(
                (
                    ticket,
                    LaunchCompletion(
                        record.device_id,
                        record.seq,
                        result,
                        flips,
                        gpu.greedy_truncations - trunc0,
                        gpu.truncation_events - events0,
                        record.tag,
                    ),
                )
            )
        except BaseException:
            record.done = True
            self._completions.put(
                (
                    ticket,
                    _Failure(
                        record.device_id, traceback.format_exc(), record.tag
                    ),
                )
            )

    def next_completion(self, timeout: float) -> LaunchCompletion | None:
        """The next finished launch, in completion order; None on timeout
        (or while a fault is being retried internally).

        A failed launch whose retry policy is exhausted surfaces as
        :class:`WorkerError` carrying the submission tag and a
        :class:`~repro.resilience.FailureReport`, so a multi-tenant
        caller can fail one job without tearing the fleet down.

        A super-launch arrives as one queue item and is delivered as its
        per-segment completions, one per call (the rest buffer FIFO).
        """
        if self._ready:
            return self._ready.popleft()
        self._check_deadlines()
        try:
            item = self._completions.get(timeout=timeout)
        except queue.Empty:
            return None
        if isinstance(item, WorkerError):  # settled by a lane reaper
            raise item
        if isinstance(item, _Failure):  # a run_on (reset) failure
            raise WorkerError(item.device_id, item.detail, item.tag)
        ticket, payload = item
        with self._records_lock:
            record = self._records.pop(ticket, None)
        if record is None:
            return None  # superseded launch: result already re-issued
        if isinstance(payload, _Failure):
            if isinstance(record.gpu, SuperLaunch):
                return self._handle_pack_fault(record, payload.detail)
            return self._handle_fault(record, payload.detail, kind="launch")
        if isinstance(payload, list):  # split super-launch completions
            self._ready.extend(payload)
            return self._ready.popleft()
        return payload

    # -- supervision -------------------------------------------------------
    def _split_pack(self, record: _LaunchRecord) -> list[_LaunchRecord]:
        """A failed super-launch's segments as individual launch records.

        Attempt counts and failure history carry over; split records are
        ordinary launches and can never re-pack, so splitting cannot loop.
        """
        out = []
        for seg in record.gpu.segments:
            seg_record = _LaunchRecord(
                record.lane, seg.device_id, seg.seq, seg.gpu, seg.batch, seg.tag
            )
            seg_record.attempts = record.attempts
            seg_record.failures = list(record.failures)
            out.append(seg_record)
        return out

    def _handle_pack_fault(self, record: _LaunchRecord, detail: str) -> None:
        """Absorb a super-launch failure: re-issue the segments solo.

        No job's fault budget is charged — inside a fused batch the
        culprit is unknown, and a pack-mate must not pay for it.  The
        executor commits no device state before finishing, so the solo
        re-runs start bit-exactly where the pack would have; a persistent
        fault then fails (and is charged to) only the job that owns it.
        """
        record.failures.append(detail)
        with self._records_lock:
            self.pack_splits += 1
        for seg_record in self._split_pack(record):
            self._submit_record(seg_record)
        return None

    def _handle_fault(
        self, record: _LaunchRecord, detail: str, kind: str
    ) -> None:
        """Absorb one fault: re-issue after backoff, or raise when the
        policy is exhausted.  Returns None (the caller polls again)."""
        record.failures.append(detail)
        key = _fault_key(record.tag)
        with self._records_lock:
            faults = self._fault_counts.get(key, 0) + 1
            self._fault_counts[key] = faults
        retry = self.retry
        budget_left = retry is not None and (
            retry.failure_budget is None or faults <= retry.failure_budget
        )
        if (
            retry is None
            or record.attempts > retry.max_retries
            or not budget_left
            or self._closed
        ):
            report = FailureReport(
                kind=kind,
                device_id=record.device_id,
                attempts=record.attempts,
                retries=record.attempts - 1,
                fatal=True,
                details=tuple(record.failures),
            )
            raise WorkerError(record.device_id, detail, record.tag, report)
        record.attempts += 1
        with self._records_lock:
            self.retries += 1
            self.retry_counts[key] = self.retry_counts.get(key, 0) + 1
        delay = retry.delay(record.attempts - 1)
        if delay <= 0:
            self._submit_record(record)
            return None
        timer = threading.Timer(delay, self._resubmit, args=(record,))
        timer.daemon = True
        with self._records_lock:
            if self._closed:
                return None
            self._timers.add(timer)
        timer.start()
        return None

    def _resubmit(self, record: _LaunchRecord) -> None:
        with self._records_lock:
            self._timers = {t for t in self._timers if t.is_alive()}
            if self._closed:
                return
        self._submit_record(record)

    def _check_deadlines(self) -> None:
        """Hang detection: quarantine the lane of any overdue launch.

        A stuck lane thread cannot be killed, but the lane can be
        respawned so every other tenant keeps running.  The overdue
        launch itself is NOT re-issued here — the abandoned thread may
        still be executing ``gpu.launch`` on the very same device state,
        so a reaper thread first waits for the old executor to exit and
        only then settles the lane's launches (:meth:`_reap_lane`).
        Submissions to a quarantined lane are buffered until the reaper
        flushes them."""
        retry = self.retry
        if retry is None or retry.launch_timeout is None:
            return
        now = time.monotonic()
        seized: list[tuple[int, ThreadPoolExecutor]] = []
        with self._records_lock:
            overdue_lanes = set()
            for record in self._records.values():
                if (
                    record.deadline is not None
                    and now > record.deadline
                    and record.lane not in self._quarantine
                ):
                    record.overdue = True
                    overdue_lanes.add(record.lane)
            for lane in sorted(overdue_lanes):
                self._quarantine[lane] = []
                old = self._executors[lane]
                self._executors[lane] = self._make_executor(lane)
                self.respawns += 1
                seized.append((lane, old))
        for lane, old in seized:
            detail = (
                f"launch exceeded deadline ({retry.launch_timeout}s) on "
                f"lane {lane}"
            )
            threading.Thread(
                target=self._reap_lane,
                args=(lane, old, detail),
                name=f"{WORKER_NAME_PREFIX}{lane}-reaper",
                daemon=True,
            ).start()

    def _reap_lane(self, lane: int, old, detail: str) -> None:
        """Quarantine reaper (its own daemon thread): wait for the
        abandoned executor's thread to exit, then settle every launch
        that was seized with the lane.

        A launch whose thread posted a completion was merely slow — its
        record stays in flight and the (already queued) result delivers
        normally, bit-exact.  A launch the thread never ran (queued
        behind the hog, its future cancelled) is re-issued on the fresh
        executor — charged as a hang fault only if its own deadline had
        expired.  A thread that outlives ``hang_grace`` is wedged: the
        launch it is executing fails with a ``kind="hang"`` report and
        its gpu is never re-issued — handing device state a live thread
        still owns to a second thread would be a data race.  Every
        fatal error is routed through the completion stream, so one
        exhausted job never strands the other seized launches."""
        old.shutdown(wait=False, cancel_futures=True)
        retry = self.retry
        grace = None
        if retry is not None:
            grace = (
                retry.hang_grace
                if retry.hang_grace is not None
                else retry.launch_timeout
            )
        wedged = False
        threads = list(getattr(old, "_threads", None) or ())
        if threads:
            deadline = None if grace is None else time.monotonic() + grace
            for thread in threads:
                timeout = (
                    None
                    if deadline is None
                    else max(deadline - time.monotonic(), 0.0)
                )
                thread.join(timeout)
                if thread.is_alive():
                    wedged = True
        else:  # no private thread list on this runtime: wait unbounded
            old.shutdown(wait=True)
        reissue: list[_LaunchRecord] = []
        failed: list[_LaunchRecord] = []
        with self._records_lock:
            entries = [
                (ticket, record)
                for ticket, record in self._records.items()
                if record.lane == lane
            ]
            poisoned: frozenset = frozenset()
            if wedged:
                # the wedged thread may still own the lane's merged pack
                # buffers — never hand them to the respawned executor
                self._pack_scratch.pop(lane, None)
                for _, record in entries:
                    if not record.done:
                        # max_workers=1: the earliest unfinished record
                        # is the one the live thread still executes; a
                        # super-launch poisons every device it touches
                        poisoned = frozenset(
                            id(g) for g in self._record_gpus(record)
                        )
                        break
            for ticket, record in entries:
                if record.done:
                    record.deadline = None  # late result: deliver as-is
                    continue
                del self._records[ticket]
                if self._touches(record, poisoned):
                    failed.append(record)
                else:
                    reissue.append(record)
            buffered = self._quarantine.pop(lane, [])
        errors = []
        for record in failed:
            errors.extend(self._hang_errors(record, detail))
        for record in reissue:
            if record.overdue:
                # an overdue super-launch hung every job riding it: split
                # and charge each segment, exactly as the solo hang would
                split = (
                    self._split_pack(record)
                    if isinstance(record.gpu, SuperLaunch)
                    else [record]
                )
                for seg_record in split:
                    try:
                        self._handle_fault(seg_record, detail, kind="hang")
                    except WorkerError as err:
                        errors.append(err)
            else:  # seized with the lane, not at fault: plain re-issue
                self._submit_record(record)
        for record in buffered:
            if self._touches(record, poisoned):
                errors.extend(self._hang_errors(record, detail))
            else:
                self._submit_record(record)
        for error in errors:
            self._completions.put(error)

    @staticmethod
    def _record_gpus(record: _LaunchRecord):
        """The device(s) a record's launch runs on (one, or a pack's set)."""
        gpu = record.gpu
        if isinstance(gpu, SuperLaunch):
            return list(gpu.gpus())
        return [gpu]

    @classmethod
    def _touches(cls, record: _LaunchRecord, poisoned: frozenset) -> bool:
        if not poisoned:
            return False
        return any(id(g) in poisoned for g in cls._record_gpus(record))

    def _hang_errors(
        self, record: _LaunchRecord, detail: str
    ) -> list[WorkerError]:
        """The hang failure(s) of a record — one per segment for a pack,
        so each riding job fails individually with its own tag."""
        if isinstance(record.gpu, SuperLaunch):
            return [
                self._hang_error(seg_record, detail)
                for seg_record in self._split_pack(record)
            ]
        return [self._hang_error(record, detail)]

    @staticmethod
    def _hang_error(record: _LaunchRecord, detail: str) -> WorkerError:
        record.failures.append(detail)
        report = FailureReport(
            kind="hang",
            device_id=record.device_id,
            attempts=record.attempts,
            retries=record.attempts - 1,
            fatal=True,
            details=tuple(record.failures),
        )
        return WorkerError(record.device_id, detail, record.tag, report)

    def forget(self, key: object) -> None:
        """Drop a finished job's supervision tallies (failure budget and
        retry counts) — the service calls this at job finalization so a
        long-lived fleet's accounting stays bounded."""
        with self._records_lock:
            self._fault_counts.pop(key, None)
            self.retry_counts.pop(key, None)

    def close(self, wait: bool = True) -> None:
        """Join every worker thread; queued-but-unstarted launches and
        pending retry timers are dropped.  Idempotent.

        ``wait=False`` skips joining the lane threads — the escape hatch
        a bounded service shutdown uses when a lane is known to be hung
        inside a launch (the abandoned thread exits whenever its launch
        finally returns; hard kills need process workers, DESIGN.md §11).
        """
        if self._closed:
            return
        self._closed = True
        with self._records_lock:
            timers = list(self._timers)
            self._timers.clear()
        for timer in timers:
            timer.cancel()
        for executor in self._executors:
            executor.shutdown(wait=wait, cancel_futures=True)

    def __enter__(self) -> "FleetWorkerGroup":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ThreadWorkerGroup(FleetWorkerGroup):
    """A fleet bound to one solver's GPU list (lane *i* runs ``gpus[i]``).

    Device state (block solutions, RNG lanes, counters) stays in the
    parent's :class:`~repro.gpu.virtual_gpu.VirtualGPU` objects, so it
    persists across ``solve()`` calls exactly like the round scheduler.
    """

    def __init__(self, gpus, retry: RetryPolicy | None = None) -> None:
        self.gpus = list(gpus)
        super().__init__(len(self.gpus), retry=retry)

    @property
    def num_devices(self) -> int:
        return len(self.gpus)

    def submit(self, device_id: int, seq: int, batch: PacketBatch) -> None:
        """Queue one launch on *device_id*'s FIFO lane."""
        self.submit_launch(
            device_id, device_id, seq, self.gpus[device_id], batch
        )

    def reset_device(self, device_id: int) -> None:
        """Queue a device reset behind that device's in-flight launches."""
        self.run_on(device_id, self.gpus[device_id].reset)


def _device_worker_main(device_id, gpu, task_queue, result_queue, slabs):
    """Child-process main loop: launch slots until told to stop.

    Runs in a fork of the parent taken at group construction (or at a
    supervised respawn), so ``gpu`` (and the backend kernel cache inside
    it) arrives by memory inheritance — nothing is pickled.  Batches
    arrive and results leave through the fork-shared
    :class:`SharedBatchSlab` pages; the queues carry only ``(kind,
    ticket, slot)`` control tuples.

    CUDA contexts do **not** survive a fork: the cuda backend pid-stamps
    its device allocations and kernel handles and rebuilds them on first
    use in the child (see :mod:`repro.backends.cuda`), so an inherited
    ``gpu`` whose state was staged on a device in the parent re-uploads
    in this process instead of touching the parent's context.
    """
    try:
        while True:
            message = task_queue.get()
            kind = message[0]
            if kind == "stop":
                return
            if kind == "reset":
                gpu.reset()
                continue
            _, ticket, slot = message
            if chaos.fire("worker_kill", who=device_id):
                os._exit(CHAOS_EXIT_CODE)
            if chaos.fire("launch_exception", who=device_id):
                raise ChaosError(
                    f"chaos: injected launch exception (device {device_id})"
                )
            slab = slabs[slot]
            trunc0 = gpu.greedy_truncations
            events0 = gpu.truncation_events
            result, flips = gpu.launch(slab.batch())
            slab.store_result(result, flips)
            result_queue.put(
                (
                    "done",
                    device_id,
                    ticket,
                    slot,
                    gpu.greedy_truncations - trunc0,
                    gpu.truncation_events - events0,
                )
            )
    except BaseException:
        result_queue.put(("error", device_id, traceback.format_exc()))


class _ProcessWorker:
    """Host-side record of one device child: process, queue, slab slots."""

    __slots__ = ("process", "task_queue", "slabs", "free_slots")

    def __init__(self, process, task_queue, slabs) -> None:
        self.process = process
        self.task_queue = task_queue
        self.slabs = slabs
        self.free_slots = list(range(len(slabs)))


class ProcessWorkerGroup:
    """One forked child process per device over shared-memory batch slots.

    Requires the ``fork`` start method (the slabs and the device state are
    inherited, never pickled).  Device state lives in the children, so —
    unlike the thread group — it does not persist into a later ``solve()``
    call on the same solver; each group starts from the state captured at
    the fork.

    With *retry* the group is supervised: a dead or hung child is
    terminated and **respawned** — the replacement forks from the parent
    now, inheriting the same anonymous-mmap slabs (any fork made after a
    slab's creation shares its pages) and the parent's snapshot of the
    device state — and every launch that was in flight on the lost child
    is re-stored from its host-kept batch and re-issued at its original
    sequence number.
    """

    def __init__(
        self, gpus, depth: int = 2, retry: RetryPolicy | None = None
    ) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        gpus = list(gpus)
        if "fork" not in multiprocessing.get_all_start_methods():
            raise WorkerError(
                -1, "process workers need the fork start method (POSIX only)"
            )
        self.retry = retry
        self._gpus = gpus
        self._ctx = multiprocessing.get_context("fork")
        self._result_queue = self._ctx.Queue()
        self._workers: list[_ProcessWorker] = []
        self._closed = False
        self._tickets = itertools.count(1)
        #: ticket -> in-flight record (consumer-thread only, no lock)
        self._records: dict[int, _LaunchRecord] = {}
        self._fault_counts: dict[object, int] = {}
        self.retry_counts: dict[object, int] = {}
        #: completions decoded ahead of delivery (respawn drains)
        self._ready: deque = deque()
        self.retries = 0
        self.respawns = 0
        try:
            for device_id, gpu in enumerate(gpus):
                slabs = [
                    SharedBatchSlab(gpu.num_blocks, gpu.model.n)
                    for _ in range(depth)
                ]
                self._workers.append(self._spawn(device_id, slabs))
        except BaseException:
            self.close()
            raise

    def _spawn(self, device_id: int, slabs) -> _ProcessWorker:
        task_queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=_device_worker_main,
            args=(
                device_id,
                self._gpus[device_id],
                task_queue,
                self._result_queue,
                slabs,
            ),
            name=f"{WORKER_NAME_PREFIX}{device_id}",
            daemon=True,
        )
        process.start()
        return _ProcessWorker(process, task_queue, slabs)

    @property
    def num_devices(self) -> int:
        return len(self._workers)

    def submit(self, device_id: int, seq: int, batch: PacketBatch) -> None:
        """Write *batch* into a free shared slot and wake the child."""
        worker = self._workers[device_id]
        if not worker.free_slots:
            raise WorkerError(
                device_id, "no free launch slot (in-flight depth exceeded)"
            )
        slot = worker.free_slots.pop()
        worker.slabs[slot].store(batch)
        record = _LaunchRecord(
            device_id,
            device_id,
            seq,
            None,
            # the host-kept copy a respawn re-stores (a dying child may
            # have half-overwritten the slab with its result columns)
            PacketBatch(
                batch.vectors.copy(),
                batch.energies.copy(),
                batch.algorithms.copy(),
                batch.operations.copy(),
            )
            if self.retry is not None
            else None,
            None,
            slot=slot,
        )
        self._issue(record)

    def _issue(self, record: _LaunchRecord) -> None:
        ticket = next(self._tickets)
        if self.retry is not None and self.retry.launch_timeout is not None:
            record.deadline = time.monotonic() + self.retry.launch_timeout
        self._records[ticket] = record
        self._workers[record.device_id].task_queue.put(
            ("launch", ticket, record.slot)
        )

    def reset_device(self, device_id: int) -> None:
        """Queue a device reset behind that device's in-flight launches."""
        self._workers[device_id].task_queue.put(("reset",))

    def forget(self, key: object) -> None:
        """Drop a finished job's supervision tallies (see
        :meth:`FleetWorkerGroup.forget`); consumer-thread only."""
        self._fault_counts.pop(key, None)
        self.retry_counts.pop(key, None)

    def next_completion(self, timeout: float) -> LaunchCompletion | None:
        """The next finished launch from any child; None on timeout (or
        while a fault is being retried internally).

        Result columns are snapshotted out of the shared slot so the slot
        can be reused by the very next submission.
        """
        if self._ready:
            return self._ready.popleft()
        try:
            message = self._result_queue.get(timeout=timeout)
        except queue.Empty:
            self._check_alive()
            self._check_deadlines()
            if self._ready:
                return self._ready.popleft()
            return None
        return self._ingest(message)

    def _ingest(self, message) -> LaunchCompletion | None:
        if message[0] == "error":
            # the child's loop exited after posting the traceback
            return self._fault_device(message[1], message[2], kind="launch")
        _, device_id, ticket, slot, truncations, events = message
        record = self._records.pop(ticket, None)
        if record is None:
            return None  # superseded launch (its slot was re-issued)
        worker = self._workers[device_id]
        batch, flips = worker.slabs[slot].snapshot()
        worker.free_slots.append(slot)
        return LaunchCompletion(
            device_id, record.seq, batch, flips, truncations, events
        )

    def _drain_results(self) -> None:
        """Decode every already-posted result before a respawn, so a
        completed launch is never re-issued (and its slot never reused
        while readable)."""
        while True:
            try:
                message = self._result_queue.get_nowait()
            except queue.Empty:
                return
            if message[0] == "error":
                # a different child died too; fold its fault in directly
                # (recursion depth is bounded by the device count)
                self._fault_device(message[1], message[2], kind="launch")
                continue
            completion = self._ingest(message)
            if completion is not None:
                self._ready.append(completion)

    def _check_alive(self) -> None:
        """Fault any child that died without posting an error message."""
        for device_id, worker in enumerate(self._workers):
            process = worker.process
            if not process.is_alive() and process.exitcode not in (0, None):
                self._fault_device(
                    device_id,
                    f"device worker process died "
                    f"(exit code {process.exitcode})",
                    kind="worker",
                )

    def _check_deadlines(self) -> None:
        if self.retry is None or self.retry.launch_timeout is None:
            return
        now = time.monotonic()
        hung = {
            record.device_id
            for record in self._records.values()
            if record.deadline is not None and now > record.deadline
        }
        for device_id in sorted(hung):
            self._fault_device(
                device_id,
                f"launch exceeded deadline ({self.retry.launch_timeout}s) "
                f"on device {device_id}",
                kind="hang",
            )

    def _fault_device(self, device_id: int, detail: str, kind: str) -> None:
        """One child incident: charge every in-flight launch on the
        device, respawn the child, and re-issue — or raise when the
        retry policy (or absence of one) says the fault is fatal."""
        self._drain_results()
        affected = {
            ticket: record
            for ticket, record in self._records.items()
            if record.device_id == device_id
        }
        retry = self.retry
        fatal: WorkerError | None = None
        for record in affected.values():
            record.failures.append(detail)
            key = _fault_key(record.tag)
            faults = self._fault_counts.get(key, 0) + 1
            self._fault_counts[key] = faults
            budget_left = retry is not None and (
                retry.failure_budget is None or faults <= retry.failure_budget
            )
            if (
                retry is None
                or record.attempts > retry.max_retries
                or not budget_left
            ):
                report = FailureReport(
                    kind=kind,
                    device_id=device_id,
                    attempts=record.attempts,
                    retries=record.attempts - 1,
                    fatal=True,
                    details=tuple(record.failures),
                )
                fatal = WorkerError(device_id, detail, record.tag, report)
                break
        if retry is None:
            raise (
                fatal
                if fatal is not None
                else WorkerError(device_id, detail)
            )
        if fatal is not None:
            for ticket in affected:
                self._records.pop(ticket, None)
            raise fatal
        if affected:
            delay = retry.delay(
                max(record.attempts for record in affected.values())
            )
            if delay > 0:
                time.sleep(delay)
        self._respawn_worker(device_id)
        for ticket, record in affected.items():
            del self._records[ticket]
            record.attempts += 1
            key = _fault_key(record.tag)
            self.retries += 1
            self.retry_counts[key] = self.retry_counts.get(key, 0) + 1
            if record.batch is not None:
                self._workers[device_id].slabs[record.slot].store(record.batch)
            self._issue(record)

    def _respawn_worker(self, device_id: int) -> None:
        """Replace a dead or hung child with a fresh fork sharing the
        same slab pages (terminate → kill escalation for a hung one)."""
        worker = self._workers[device_id]
        self._reap(worker.process)
        try:
            worker.task_queue.close()
            worker.task_queue.cancel_join_thread()
        except (OSError, ValueError):  # pragma: no cover - torn down
            pass
        fresh = self._spawn(device_id, worker.slabs)
        worker.process = fresh.process
        worker.task_queue = fresh.task_queue
        self.respawns += 1

    @staticmethod
    def _reap(process) -> None:
        """join → terminate → kill escalation; never hangs."""
        if not process.is_alive():
            process.join(timeout=1.0)
            return
        process.terminate()
        process.join(timeout=1.0)
        if process.is_alive():  # pragma: no cover - stuck in a syscall
            process.kill()
            process.join(timeout=1.0)

    def close(self) -> None:
        """Stop and reap every child process.  Idempotent.

        Children get a stop sentinel and a grace period; ones still alive
        (stuck kernels, queued work) are terminated, then killed — the
        anonymous-mmap slabs free themselves when the last mapping drops.
        """
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.task_queue.put(("stop",))
            except (OSError, ValueError):  # queue already torn down
                pass
        for worker in self._workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            if worker.process.is_alive():  # pragma: no cover - stuck child
                worker.process.kill()
                worker.process.join(timeout=1.0)
        for worker in self._workers:
            worker.task_queue.close()
            worker.task_queue.cancel_join_thread()
        self._result_queue.close()
        self._result_queue.cancel_join_thread()

    def __enter__(self) -> "ProcessWorkerGroup":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
