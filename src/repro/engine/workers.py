"""Device workers: one free-running execution lane per virtual GPU.

The paper drives every physical GPU from its own host thread; a device
fetches work, runs a bulk search, and returns solutions at its own pace
(§III.C).  A *worker group* reproduces that seam for the virtual GPUs:

* :class:`FleetWorkerGroup` — one single-thread executor per *lane*, not
  bound to any solver's devices: each submission names the virtual GPU to
  run, and completions carry an opaque ``tag`` routed back to the caller.
  This is the multi-tenant seam (DESIGN.md §8): a
  :class:`~repro.service.SolveService` owns one fleet and multiplexes many
  jobs' launches over it, with the tag identifying the owning job.
* :class:`ThreadWorkerGroup` — a fleet bound to one solver's GPU list
  (lane *i* always runs ``gpus[i]``), the single-tenant configuration the
  async engine drives.  The per-device FIFO is what gives each device
  in-flight depth (a launch can be queued behind the running one) while
  NumPy/numba kernels release the GIL, so lanes genuinely overlap.
* :class:`ProcessWorkerGroup` — one forked child process per device,
  exchanging whole :class:`~repro.core.packet.PacketBatch` columns through
  :class:`~repro.core.packet.SharedBatchSlab` shared-memory slots.  Only a
  tiny ``(kind, seq, slot)`` tuple crosses the queue — no array is ever
  pickled — so the engine sidesteps the GIL entirely for backends whose
  kernels hold it (the numba JIT path).

Both groups push :class:`LaunchCompletion` records onto one host-side
completion stream; the engine consumes them with
:meth:`~WorkerGroup.next_completion` in whatever order devices finish.
Failures travel the same stream and surface as :class:`WorkerError` on the
host, so a dead device can never strand the event loop.

Lifecycle: groups are context managers and :meth:`~WorkerGroup.close` is
idempotent; closing joins every thread/process (terminating stuck children)
so a solve that raises mid-flight leaks nothing.
"""

from __future__ import annotations

import multiprocessing
import queue
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.packet import PacketBatch, SharedBatchSlab

__all__ = [
    "FleetWorkerGroup",
    "LaunchCompletion",
    "ProcessWorkerGroup",
    "ThreadWorkerGroup",
    "WorkerError",
]

#: thread-name / process-name prefix, asserted by the leak regression tests
WORKER_NAME_PREFIX = "engine-vgpu"


class WorkerError(RuntimeError):
    """A device worker failed; carries the device id and its traceback.

    ``tag`` is the opaque submission tag of the failed launch (None for
    untagged single-tenant groups) — the service uses it to fail only the
    owning job instead of the whole fleet.
    """

    def __init__(self, device_id: int, detail: str, tag: object = None) -> None:
        super().__init__(f"device worker {device_id} failed:\n{detail}")
        self.device_id = device_id
        self.detail = detail
        self.tag = tag


@dataclass(frozen=True)
class LaunchCompletion:
    """One finished launch, as delivered to the host event loop."""

    #: which virtual GPU produced it
    device_id: int
    #: per-device launch sequence number (1-based, FIFO per device)
    seq: int
    #: result batch (best vector/energy per lane, strategies passed through)
    batch: PacketBatch
    #: per-lane flip counts of the launch
    flips: np.ndarray
    #: greedy-cap truncated rows in this launch (delta, not cumulative)
    truncations: int
    #: 1 when this launch emitted a GreedyTruncationWarning, else 0
    truncation_events: int
    #: opaque submission tag (the service's job routing key); None for
    #: single-tenant groups
    tag: object = None


class _Failure:
    """Internal: an exception crossing the completion stream."""

    __slots__ = ("device_id", "detail", "tag")

    def __init__(self, device_id: int, detail: str, tag: object = None) -> None:
        self.device_id = device_id
        self.detail = detail
        self.tag = tag


class FleetWorkerGroup:
    """One single-thread executor per lane, shared by any number of tenants.

    A lane is an execution slot of the (virtual) machine, not a device of
    one solver: every submission names the :class:`VirtualGPU` to run, so
    launches of different jobs — each with its own device-resident state —
    interleave on the same lane at launch granularity.  The per-lane FIFO
    still serializes everything submitted to one lane, which is what lets
    a job pin its per-device state to a lane and keep depth > 1 launches
    in flight without locking.
    """

    def __init__(self, num_lanes: int) -> None:
        if num_lanes < 1:
            raise ValueError("num_lanes must be >= 1")
        self._completions: queue.Queue = queue.Queue()
        self._executors = [
            ThreadPoolExecutor(
                max_workers=1, thread_name_prefix=f"{WORKER_NAME_PREFIX}{i}"
            )
            for i in range(num_lanes)
        ]
        self._closed = False

    @property
    def num_lanes(self) -> int:
        return len(self._executors)

    def submit_launch(
        self,
        lane: int,
        device_id: int,
        seq: int,
        gpu,
        batch: PacketBatch,
        tag: object = None,
    ) -> None:
        """Queue ``gpu.launch(batch)`` on *lane*'s FIFO.

        *device_id* and *seq* are the submitter's coordinates (a job's
        device index and per-device launch sequence) and are echoed back
        on the completion along with *tag*.
        """
        self._executors[lane].submit(self._run, device_id, seq, gpu, batch, tag)

    def run_on(self, lane: int, fn, tag: object = None) -> None:
        """Queue an arbitrary callable (e.g. a device reset) behind the
        lane's in-flight launches.

        Exceptions are routed onto the completion stream as
        :class:`WorkerError` (with *tag*) just like launch failures —
        never swallowed by the unchecked future.
        """
        self._executors[lane].submit(self._run_guarded, lane, fn, tag)

    def _run_guarded(self, lane: int, fn, tag) -> None:
        try:
            fn()
        except BaseException:
            self._completions.put(_Failure(lane, traceback.format_exc(), tag))

    def _run(self, device_id: int, seq: int, gpu, batch: PacketBatch, tag) -> None:
        try:
            trunc0 = gpu.greedy_truncations
            events0 = gpu.truncation_events
            result, flips = gpu.launch(batch)
            self._completions.put(
                LaunchCompletion(
                    device_id,
                    seq,
                    result,
                    flips,
                    gpu.greedy_truncations - trunc0,
                    gpu.truncation_events - events0,
                    tag,
                )
            )
        except BaseException:
            self._completions.put(
                _Failure(device_id, traceback.format_exc(), tag)
            )

    def next_completion(self, timeout: float) -> LaunchCompletion | None:
        """The next finished launch, in completion order; None on timeout.

        A failed launch surfaces as :class:`WorkerError` carrying the
        submission tag, so a multi-tenant caller can fail one job without
        tearing the fleet down.
        """
        try:
            item = self._completions.get(timeout=timeout)
        except queue.Empty:
            return None
        if isinstance(item, _Failure):
            raise WorkerError(item.device_id, item.detail, item.tag)
        return item

    def close(self) -> None:
        """Join every worker thread; queued-but-unstarted launches are
        dropped.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for executor in self._executors:
            executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "FleetWorkerGroup":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ThreadWorkerGroup(FleetWorkerGroup):
    """A fleet bound to one solver's GPU list (lane *i* runs ``gpus[i]``).

    Device state (block solutions, RNG lanes, counters) stays in the
    parent's :class:`~repro.gpu.virtual_gpu.VirtualGPU` objects, so it
    persists across ``solve()`` calls exactly like the round scheduler.
    """

    def __init__(self, gpus) -> None:
        self.gpus = list(gpus)
        super().__init__(len(self.gpus))

    @property
    def num_devices(self) -> int:
        return len(self.gpus)

    def submit(self, device_id: int, seq: int, batch: PacketBatch) -> None:
        """Queue one launch on *device_id*'s FIFO lane."""
        self.submit_launch(
            device_id, device_id, seq, self.gpus[device_id], batch
        )

    def reset_device(self, device_id: int) -> None:
        """Queue a device reset behind that device's in-flight launches."""
        self.run_on(device_id, self.gpus[device_id].reset)


def _device_worker_main(device_id, gpu, task_queue, result_queue, slabs):
    """Child-process main loop: launch slots until told to stop.

    Runs in a fork of the parent taken at group construction, so ``gpu``
    (and the backend kernel cache inside it) arrives by memory inheritance
    — nothing is pickled.  Batches arrive and results leave through the
    fork-shared :class:`SharedBatchSlab` pages; the queues carry only
    ``(kind, seq, slot)`` control tuples.

    CUDA contexts do **not** survive a fork: the cuda backend pid-stamps
    its device allocations and kernel handles and rebuilds them on first
    use in the child (see :mod:`repro.backends.cuda`), so an inherited
    ``gpu`` whose state was staged on a device in the parent re-uploads
    in this process instead of touching the parent's context.
    """
    try:
        while True:
            message = task_queue.get()
            kind = message[0]
            if kind == "stop":
                return
            if kind == "reset":
                gpu.reset()
                continue
            _, seq, slot = message
            slab = slabs[slot]
            trunc0 = gpu.greedy_truncations
            events0 = gpu.truncation_events
            result, flips = gpu.launch(slab.batch())
            slab.store_result(result, flips)
            result_queue.put(
                (
                    "done",
                    device_id,
                    seq,
                    slot,
                    gpu.greedy_truncations - trunc0,
                    gpu.truncation_events - events0,
                )
            )
    except BaseException:
        result_queue.put(("error", device_id, traceback.format_exc()))


class _ProcessWorker:
    """Host-side record of one device child: process, queue, slab slots."""

    __slots__ = ("process", "task_queue", "slabs", "free_slots")

    def __init__(self, process, task_queue, slabs) -> None:
        self.process = process
        self.task_queue = task_queue
        self.slabs = slabs
        self.free_slots = list(range(len(slabs)))


class ProcessWorkerGroup:
    """One forked child process per device over shared-memory batch slots.

    Requires the ``fork`` start method (the slabs and the device state are
    inherited, never pickled).  Device state lives in the children, so —
    unlike the thread group — it does not persist into a later ``solve()``
    call on the same solver; each group starts from the state captured at
    the fork.
    """

    def __init__(self, gpus, depth: int = 2) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        gpus = list(gpus)
        if "fork" not in multiprocessing.get_all_start_methods():
            raise WorkerError(
                -1, "process workers need the fork start method (POSIX only)"
            )
        ctx = multiprocessing.get_context("fork")
        self._result_queue = ctx.Queue()
        self._workers: list[_ProcessWorker] = []
        self._closed = False
        try:
            for device_id, gpu in enumerate(gpus):
                slabs = [
                    SharedBatchSlab(gpu.num_blocks, gpu.model.n)
                    for _ in range(depth)
                ]
                task_queue = ctx.Queue()
                process = ctx.Process(
                    target=_device_worker_main,
                    args=(device_id, gpu, task_queue, self._result_queue, slabs),
                    name=f"{WORKER_NAME_PREFIX}{device_id}",
                    daemon=True,
                )
                process.start()
                self._workers.append(_ProcessWorker(process, task_queue, slabs))
        except BaseException:
            self.close()
            raise

    @property
    def num_devices(self) -> int:
        return len(self._workers)

    def submit(self, device_id: int, seq: int, batch: PacketBatch) -> None:
        """Write *batch* into a free shared slot and wake the child."""
        worker = self._workers[device_id]
        if not worker.free_slots:
            raise WorkerError(
                device_id, "no free launch slot (in-flight depth exceeded)"
            )
        slot = worker.free_slots.pop()
        worker.slabs[slot].store(batch)
        worker.task_queue.put(("launch", seq, slot))

    def reset_device(self, device_id: int) -> None:
        """Queue a device reset behind that device's in-flight launches."""
        self._workers[device_id].task_queue.put(("reset",))

    def next_completion(self, timeout: float) -> LaunchCompletion | None:
        """The next finished launch from any child; None on timeout.

        Result columns are snapshotted out of the shared slot so the slot
        can be reused by the very next submission.
        """
        try:
            message = self._result_queue.get(timeout=timeout)
        except queue.Empty:
            self._check_alive()
            return None
        if message[0] == "error":
            raise WorkerError(message[1], message[2])
        _, device_id, seq, slot, truncations, events = message
        worker = self._workers[device_id]
        batch, flips = worker.slabs[slot].snapshot()
        worker.free_slots.append(slot)
        return LaunchCompletion(device_id, seq, batch, flips, truncations, events)

    def _check_alive(self) -> None:
        """Raise when a child died without posting an error message."""
        for device_id, worker in enumerate(self._workers):
            process = worker.process
            if not process.is_alive() and process.exitcode not in (0, None):
                raise WorkerError(
                    device_id,
                    f"device worker process died (exit code {process.exitcode})",
                )

    def close(self) -> None:
        """Stop and reap every child process.  Idempotent.

        Children get a stop sentinel and a grace period; ones still alive
        (stuck kernels, queued work) are terminated — the anonymous-mmap
        slabs free themselves when the last mapping drops.
        """
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.task_queue.put(("stop",))
            except (OSError, ValueError):  # queue already torn down
                pass
        for worker in self._workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
        for worker in self._workers:
            worker.task_queue.close()
            worker.task_queue.cancel_join_thread()
        self._result_queue.close()
        self._result_queue.cancel_join_thread()

    def __enter__(self) -> "ProcessWorkerGroup":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
