"""Execution engines: how launches are scheduled across virtual GPUs.

Three engines drive a solve:

* ``"round"`` — the double-buffered, round-synchronous
  :class:`~repro.solver.scheduler.RoundScheduler` loop (the default): all
  devices submit round *r*, then all collect — one slow device stalls the
  fleet at the barrier.
* ``"async"`` — the free-running :class:`~repro.engine.async_engine.AsyncEngine`
  over per-device worker threads: each device keeps ``inflight_per_device``
  launches in flight, completions are collected as they arrive, and pool
  reads/inserts happen as-of-arrival.  ``DABSConfig.virtual_time`` switches
  it to the deterministic merge that replays the round schedule bit-exactly.
* ``"async-process"`` — the same engine over one forked process per device
  with shared-memory batch slots (:class:`~repro.core.packet.SharedBatchSlab`),
  sidestepping the GIL entirely.

Selection (first match wins): an explicit name via ``DABSConfig.engine`` or
the CLI ``--engine`` flag; the ``REPRO_ENGINE`` environment variable; the
``"round"`` default.
"""

from __future__ import annotations

import os

from repro.engine.async_engine import AsyncEngine, EngineDriver, VirtualTimeReplay
from repro.engine.workers import (
    FleetWorkerGroup,
    LaunchCompletion,
    ProcessWorkerGroup,
    ThreadWorkerGroup,
    WorkerError,
)

__all__ = [
    "AsyncEngine",
    "ENGINE_ENV_VAR",
    "EngineDriver",
    "FleetWorkerGroup",
    "LaunchCompletion",
    "ProcessWorkerGroup",
    "ThreadWorkerGroup",
    "VirtualTimeReplay",
    "WorkerError",
    "engine_names",
    "resolve_engine_name",
    "validate_engine_name",
]

#: environment variable consulted when no explicit engine is given
ENGINE_ENV_VAR = "REPRO_ENGINE"

_ENGINE_NAMES = ("round", "async", "async-process")


def engine_names() -> tuple[str, ...]:
    """All engine names, in preference order."""
    return _ENGINE_NAMES


def validate_engine_name(name: str) -> None:
    """Strict check of an engine name; the CLI reuses the message for
    eager ``REPRO_ENGINE`` validation."""
    if name not in _ENGINE_NAMES:
        raise ValueError(
            f"unknown engine {name!r} (known: {', '.join(_ENGINE_NAMES)})"
        )


def resolve_engine_name(name: str | None) -> str:
    """Resolve an engine spec: explicit name > ``REPRO_ENGINE`` > "round"."""
    if name is not None:
        validate_engine_name(name)
        return name
    env = os.environ.get(ENGINE_ENV_VAR, "").strip()
    if env:
        validate_engine_name(env)
        return env
    return "round"
