"""The asyncio TCP front door of the solve service (DESIGN.md §13).

``repro serve --listen`` promotes the stdin JSON-lines session to a real
network server: one :class:`ServeServer` multiplexes many persistent
client connections over a single shared
:class:`~repro.service.SolveService` (or
:class:`~repro.federation.Federation`), speaking the same versioned wire
protocol (:mod:`repro.server.protocol`) as the stdin mode.

Design points:

* **one event loop, many watcher threads** — the asyncio loop owns every
  piece of server state (job records, tenant ledgers, metrics), so none
  of it needs locks; the blocking service surface
  (``handle.incumbents()``, ``handle.result()``) is consumed by one
  daemon watcher thread per job (exactly the stdin session's model) that
  funnels events back into the loop with ``call_soon_threadsafe``.  A
  slow or stalled client socket therefore never stalls scheduling — its
  events buffer in its transport, everyone else streams on.
* **durable job state** — a job belongs to a *(tenant, id)* key, not to
  a connection.  Disconnecting abandons nothing: the job keeps running,
  its incumbent stream is buffered in a bounded replay window, and a
  later connection of the same tenant can ``query`` its status or
  ``attach`` to replay what it missed and stream the rest live.
  Terminal records are purged ``job_ttl`` seconds after finishing.
* **per-tenant quotas and rate limits** (:mod:`repro.server.quota`) sit
  in front of the fair-share scheduler: ``max_jobs`` bounds a tenant's
  outstanding jobs, a token bucket bounds its submission rate, and both
  reject with structured error codes (``quota-exceeded`` /
  ``rate-limited`` with a ``retry_after`` hint).
* **observability** — a Prometheus-style text exposition
  (:mod:`repro.server.metrics`) on a dedicated HTTP port and the
  ``metrics`` op: queue depth, lane utilization, cache hit rate,
  coalesce counters, and per-tenant latency percentiles for
  admission→first-incumbent and admission→done.
"""

from __future__ import annotations

import asyncio
import threading
import time
import traceback
import warnings
from collections import deque
from dataclasses import replace

from repro.server import protocol
from repro.server.metrics import (
    STAGE_DONE,
    STAGE_FIRST_INCUMBENT,
    ServerMetrics,
    render_prometheus,
)
from repro.server.protocol import ProtocolError, Request
from repro.server.quota import TenantQuota
from repro.service.job import JobStatus
from repro.service.service import ServiceOverloadedError
from repro.solver.abs_solver import ABSSolver
from repro.solver.dabs import DABSSolver

__all__ = ["DEFAULT_TENANT", "ServeServer", "run_server"]

#: tenant assumed for connections that never sent a ``hello``
DEFAULT_TENANT = "default"

_LEGACY_WARNING = (
    "received a pre-v1 JSON-lines frame (no \"v\" envelope key); the "
    "legacy shapes are deprecated — send {\"v\": 1, ...} envelopes "
    "(repro.server.protocol)"
)


class _JobRecord:
    """Server-side durable state of one submitted job (loop-confined)."""

    __slots__ = (
        "key",
        "client_id",
        "tenant",
        "handle",
        "accepted",
        "submitted_at",
        "first_incumbent_at",
        "finished_at",
        "best_energy",
        "terminal_payload",
        "incumbents",
        "dropped",
        "done",
        "subscribers",
    )

    def __init__(self, key, client_id, tenant, handle, buffer_cap: int):
        self.key = key
        self.client_id = client_id
        self.tenant = tenant
        self.handle = handle
        self.accepted: dict | None = None
        self.submitted_at = time.perf_counter()
        self.first_incumbent_at: float | None = None
        self.finished_at: float | None = None
        self.best_energy: int | None = None
        self.terminal_payload: dict | None = None
        #: bounded replay window of incumbent events (oldest dropped)
        self.incumbents: deque = deque(maxlen=buffer_cap)
        self.dropped = 0
        self.done = asyncio.Event()
        self.subscribers: set[_Connection] = set()

    @property
    def terminal(self) -> bool:
        return self.terminal_payload is not None


class _Connection:
    """One client connection (loop-confined)."""

    __slots__ = ("writer", "tenant", "legacy_warned", "subscriptions", "open")

    def __init__(self, writer) -> None:
        self.writer = writer
        self.tenant = DEFAULT_TENANT
        self.legacy_warned = False
        self.subscriptions: set[_JobRecord] = set()
        self.open = True

    def send(self, payload: dict) -> None:
        """Queue one event on the transport (never blocks the loop)."""
        if not self.open:
            return
        try:
            self.writer.write((protocol.encode_event(payload) + "\n").encode())
        except (ConnectionError, RuntimeError):
            self.open = False


class ServeServer:
    """Asyncio TCP server over one solve service / federation.

    Run blocking (:meth:`run`, the CLI path) or as a background thread
    (:meth:`start` / :meth:`stop`, also the context-manager form) — the
    thread mode is what tests and the load harness use.  ``port=0`` and
    ``metrics_port=0`` bind ephemeral ports, exposed as :attr:`port` and
    :attr:`metrics_port` once started; ``metrics_port=None`` disables
    the HTTP exporter (the ``metrics`` op keeps working).
    """

    def __init__(
        self,
        service,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics_port: int | None = 0,
        quota: TenantQuota | None = None,
        job_ttl: float = 600.0,
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
        incumbent_buffer: int = 256,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.metrics_port = metrics_port
        self.quota = quota if quota is not None else TenantQuota()
        self.job_ttl = job_ttl
        self.max_frame_bytes = max_frame_bytes
        self.incumbent_buffer = incumbent_buffer
        self.metrics = ServerMetrics()
        self._records: dict[tuple[str, str], _JobRecord] = {}
        self._tenant_outstanding: dict[str, int] = {}
        self._buckets: dict[str, object] = {}
        self._conns: set[_Connection] = set()
        self._conn_tasks: set = set()
        self._req_counter = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------
    async def _amain(self, on_ready=None) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(
            self._client_connected,
            self.host,
            self.port,
            # stream budget above the frame limit: frames between the two
            # get a clean frame-too-large error, frames beyond the stream
            # budget additionally cost the connection (unrecoverable)
            limit=2 * self.max_frame_bytes + 65536,
        )
        self.port = server.sockets[0].getsockname()[1]
        metrics_server = None
        if self.metrics_port is not None:
            metrics_server = await asyncio.start_server(
                self._metrics_connected, self.host, self.metrics_port
            )
            self.metrics_port = metrics_server.sockets[0].getsockname()[1]
        purge = asyncio.create_task(self._purge_loop())
        try:
            if on_ready is not None:
                on_ready(self)
            await self._stop.wait()
        finally:
            purge.cancel()
            server.close()
            await server.wait_closed()
            if metrics_server is not None:
                metrics_server.close()
                await metrics_server.wait_closed()
            for conn in list(self._conns):
                conn.send({"event": "bye"})
                conn.open = False
                try:
                    conn.writer.close()
                except Exception:  # pragma: no cover - already torn down
                    pass
            # closing the transports feeds EOF to the connection tasks —
            # wait for them to unwind on their own instead of letting
            # asyncio.run() cancel them mid-readline (noisy teardown)
            if self._conn_tasks:
                await asyncio.wait(set(self._conn_tasks), timeout=5.0)

    def run(self, on_ready=None) -> int:
        """Serve until a ``shutdown`` op or Ctrl-C; returns an exit code."""
        try:
            asyncio.run(self._amain(on_ready))
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            pass
        return 0

    def start(self) -> "ServeServer":
        """Start serving on a background thread; returns self once the
        ports are bound (raises the startup error otherwise)."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        ready = threading.Event()
        failure: list[BaseException] = []

        def runner() -> None:
            try:
                asyncio.run(self._amain(lambda _self: ready.set()))
            except BaseException as exc:  # pragma: no cover - startup bugs
                failure.append(exc)
            finally:
                ready.set()

        self._thread = threading.Thread(
            target=runner, name="repro-serve-server", daemon=True
        )
        self._thread.start()
        ready.wait(30.0)
        if failure:
            self._thread.join(5.0)
            raise failure[0]
        return self

    def stop(self) -> None:
        """Stop a background-thread server (idempotent)."""
        thread, loop, stop = self._thread, self._loop, self._stop
        if thread is None or loop is None or stop is None:
            return
        try:
            loop.call_soon_threadsafe(stop.set)
        except RuntimeError:  # loop already closed
            pass
        thread.join(10.0)
        self._thread = None

    def __enter__(self) -> "ServeServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- client connections ------------------------------------------------
    def _ready_payload(self) -> dict:
        payload = {"event": "ready", "protocol": protocol.PROTOCOL_VERSION}
        devices = getattr(
            self.service, "num_devices", getattr(self.service, "devices", None)
        )
        if devices is not None:
            payload["devices"] = devices
        islands = getattr(self.service, "num_islands", None)
        if islands is not None:
            payload["islands"] = islands
        max_queue = getattr(self.service, "max_queue", None)
        if max_queue is not None:
            payload["max_queue"] = max_queue
        return payload

    async def _client_connected(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        conn = _Connection(writer)
        self._conns.add(conn)
        self.metrics.connection_opened()
        conn.send(self._ready_payload())
        try:
            while self._stop is not None and not self._stop.is_set():
                try:
                    line = await reader.readline()
                except ValueError:
                    # the frame blew the stream budget: the reader cannot
                    # resync mid-line, so report and drop the connection
                    self._error(
                        conn,
                        protocol.E_FRAME_TOO_LARGE,
                        "frame exceeds the stream budget; closing connection",
                    )
                    break
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                if not await self._handle_line(conn, line.strip()):
                    break
        finally:
            for record in list(conn.subscriptions):
                record.subscribers.discard(conn)
            conn.subscriptions.clear()
            conn.open = False
            self._conns.discard(conn)
            self.metrics.connection_closed()
            try:
                writer.close()
            except Exception:  # pragma: no cover - transport already gone
                pass

    async def _handle_line(self, conn: _Connection, line: bytes) -> bool:
        """Decode and dispatch one frame; False ends the connection."""
        try:
            request = protocol.decode_request(
                line, max_bytes=self.max_frame_bytes
            )
        except ProtocolError as exc:
            self._error(conn, exc.code, str(exc))
            return True
        self.metrics.record_frame(request.legacy)
        if request.legacy and not conn.legacy_warned:
            conn.legacy_warned = True
            warnings.warn(_LEGACY_WARNING, DeprecationWarning, stacklevel=2)
        try:
            return await self._dispatch(conn, request)
        except ProtocolError as exc:
            fields = {} if request.id is None else {"id": request.id}
            self._error(conn, exc.code, str(exc), **fields)
            return True
        except Exception:
            # a handler bug must never tear the connection down
            self._error(
                conn,
                protocol.E_INTERNAL,
                "internal error handling request",
                op=request.op,
                traceback=traceback.format_exc(),
            )
            return True

    def _error(
        self, conn: _Connection, code: str, message: str, **fields
    ) -> None:
        self.metrics.record_error(code)
        conn.send(protocol.error_payload(code, message, **fields))

    # -- op dispatch -------------------------------------------------------
    async def _dispatch(self, conn: _Connection, request: Request) -> bool:
        op = request.op
        if op == "hello":
            tenant = str(request.params.get("tenant") or DEFAULT_TENANT)
            conn.tenant = tenant
            reply = {
                "event": "hello",
                "tenant": tenant,
                "protocol": protocol.PROTOCOL_VERSION,
            }
            if request.id is not None:
                reply["id"] = request.id
            conn.send(reply)
        elif op == "submit":
            self._submit(conn, request)
        elif op == "cancel":
            record = self._record_for(conn, request)
            record.handle.cancel()
        elif op == "query":
            record = self._record_for(conn, request)
            conn.send(
                {
                    "event": "job",
                    "id": record.client_id,
                    "tenant": record.tenant,
                    "job": record.handle.job_id,
                    "status": record.handle.status.value,
                    "best": record.best_energy,
                    "done": record.terminal,
                    "buffered": len(record.incumbents),
                    "dropped": record.dropped,
                }
            )
        elif op == "attach":
            self._attach(conn, request)
        elif op == "stats":
            stats = await asyncio.to_thread(self.service.stats)
            payload = {
                "event": "stats",
                "errors": self.metrics.errors_total,
                "server": self.metrics.snapshot(),
                **stats,
            }
            if request.id is not None:
                payload["id"] = request.id
            conn.send(payload)
        elif op == "metrics":
            snapshot = await asyncio.to_thread(self.service.stats_snapshot)
            payload = {
                "event": "metrics",
                "text": render_prometheus(self.metrics, snapshot),
            }
            if request.id is not None:
                payload["id"] = request.id
            conn.send(payload)
        elif op == "drain":
            waits = [
                record.done.wait()
                for record in self._records.values()
                if record.tenant == conn.tenant and not record.terminal
            ]
            if waits:
                await asyncio.gather(*waits)
            reply = {"event": "drained"}
            if request.id is not None:
                reply["id"] = request.id
            conn.send(reply)
        elif op == "shutdown":
            conn.send({"event": "bye"})
            assert self._stop is not None
            self._stop.set()
            return False
        else:  # pragma: no cover - decode_request already gates ops
            raise ProtocolError(protocol.E_UNKNOWN_OP, f"unknown op {op!r}")
        return True

    def _record_for(self, conn: _Connection, request: Request) -> _JobRecord:
        if request.id is None:
            raise ProtocolError(
                protocol.E_BAD_REQUEST, f'{request.op} needs a job "id"'
            )
        record = self._records.get((conn.tenant, request.id))
        if record is None:
            raise ProtocolError(
                protocol.E_UNKNOWN_JOB,
                f"unknown job id {request.id!r} for tenant {conn.tenant!r}",
            )
        return record

    # -- submit / attach ---------------------------------------------------
    def _submit(self, conn: _Connection, request: Request) -> None:
        tenant = conn.tenant
        params = request.params
        if request.id is not None:
            client_id = request.id
        else:
            self._req_counter += 1
            client_id = f"req-{self._req_counter}"
        key = (tenant, client_id)
        existing = self._records.get(key)
        if existing is not None and not existing.terminal:
            raise ProtocolError(
                protocol.E_DUPLICATE_ID,
                f"duplicate job id {client_id!r} (still running)",
            )
        outstanding = self._tenant_outstanding.get(tenant, 0)
        if (
            self.quota.max_jobs is not None
            and outstanding >= self.quota.max_jobs
        ):
            self._error(
                conn,
                protocol.E_QUOTA_EXCEEDED,
                f"tenant {tenant!r} already has {outstanding} outstanding "
                f"jobs (quota {self.quota.max_jobs})",
                id=client_id,
                limit=self.quota.max_jobs,
            )
            return
        if self.quota.rate is not None:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = self.quota.make_bucket()
            if not bucket.try_acquire():
                self._error(
                    conn,
                    protocol.E_RATE_LIMITED,
                    f"tenant {tenant!r} exceeded {self.quota.rate}/s "
                    "submission rate",
                    id=client_id,
                    retry_after=round(bucket.retry_after(), 4),
                )
                return
        try:
            model = protocol.load_model(params)
            solver_cls = (
                ABSSolver if params.get("solver") == "abs" else DABSSolver
            )
            kwargs = protocol.submit_kwargs(params)
            kwargs.update(protocol.limit_kwargs(params))
            if params.get("virtual_time"):
                default = getattr(self.service, "default_config", None)
                if default is None:
                    raise ProtocolError(
                        protocol.E_BAD_REQUEST,
                        "virtual_time submissions need a service with a "
                        "default solver config",
                    )
                kwargs["config"] = replace(default, virtual_time=True)
            handle = self.service.submit(
                model, solver_cls=solver_cls, block=False, **kwargs
            )
        except ProtocolError:
            raise
        except ServiceOverloadedError as exc:
            self._error(conn, protocol.E_OVERLOADED, str(exc), id=client_id)
            return
        except (OSError, ValueError, KeyError) as exc:
            self._error(conn, protocol.E_BAD_REQUEST, str(exc), id=client_id)
            return
        record = _JobRecord(
            key, client_id, tenant, handle, self.incumbent_buffer
        )
        self._records[key] = record
        self._tenant_outstanding[tenant] = outstanding + 1
        self.metrics.record_submit(tenant)
        accepted = {
            "event": "accepted",
            "id": client_id,
            "tenant": tenant,
            "job": handle.job_id,
            "n": model.n,
        }
        record.accepted = accepted
        record.subscribers.add(conn)
        conn.subscriptions.add(record)
        conn.send(accepted)
        threading.Thread(
            target=self._watch,
            args=(record,),
            name=f"serve-watch-{handle.job_id}",
            daemon=True,
        ).start()

    def _attach(self, conn: _Connection, request: Request) -> None:
        record = self._record_for(conn, request)
        replayed = list(record.incumbents)
        terminal = record.terminal_payload
        conn.send(
            {
                "event": "attached",
                "id": record.client_id,
                "tenant": record.tenant,
                "job": record.handle.job_id,
                "status": record.handle.status.value,
                "replayed": len(replayed) + (1 if terminal else 0),
                "dropped": record.dropped,
            }
        )
        for payload in replayed:
            conn.send(payload)
        if terminal is not None:
            conn.send(terminal)
        else:
            record.subscribers.add(conn)
            conn.subscriptions.add(record)

    # -- job event plumbing (watcher threads → loop) -----------------------
    def _watch(self, record: _JobRecord) -> None:
        """Daemon thread: drain one job's incumbent stream, then emit its
        terminal event — the stdin session's watcher, aimed at the loop."""
        handle = record.handle
        try:
            for update in handle.incumbents():
                self._post(
                    record,
                    {
                        "event": "incumbent",
                        "id": record.client_id,
                        "tenant": record.tenant,
                        "energy": update.energy,
                        "elapsed": round(update.elapsed, 6),
                    },
                )
            payload = self._terminal_payload(record)
        except Exception:
            payload = {
                "event": "failed",
                "id": record.client_id,
                "tenant": record.tenant,
                "code": protocol.E_INTERNAL,
                "error": "internal watcher error",
                "traceback": traceback.format_exc(),
                "retries": 0,
            }
        self._post(record, payload, terminal=True)

    def _terminal_payload(self, record: _JobRecord) -> dict:
        handle = record.handle
        status = handle.status
        base = {"id": record.client_id, "tenant": record.tenant}
        if status is JobStatus.DONE:
            result = handle.result()
            payload = {
                "event": "done",
                **base,
                "energy": int(result.best_energy),
                "vector": "".join(map(str, result.best_vector.tolist())),
                "launches": result.launches,
                "elapsed": round(result.elapsed, 6),
                "retries": result.retries,
                "summary": result.summary(),
            }
            if result.degraded:
                payload["degraded"] = True
                payload["degraded_reasons"] = list(result.degraded_reasons)
            return payload
        if status is JobStatus.CANCELLED:
            return {"event": "cancelled", **base}
        payload = {
            "event": "failed",
            **base,
            "code": protocol.E_JOB_FAILED,
            "retries": 0,
        }
        try:
            handle.result()
            payload["error"] = "unknown failure"  # pragma: no cover
        except Exception as exc:
            payload["error"] = str(exc)
            payload["traceback"] = traceback.format_exc()
            report = getattr(exc, "report", None)
            if report is not None:
                payload["retries"] = report.retries
                payload["report"] = report.to_dict()
        return payload

    def _post(self, record: _JobRecord, payload: dict, terminal=False) -> None:
        try:
            assert self._loop is not None
            self._loop.call_soon_threadsafe(
                self._deliver, record, payload, terminal
            )
        except RuntimeError:  # loop closed mid-shutdown: nobody listens
            pass

    def _deliver(self, record: _JobRecord, payload: dict, terminal) -> None:
        """Loop thread: buffer, account, and fan one job event out."""
        now = time.perf_counter()
        event = payload["event"]
        if event == "incumbent":
            record.best_energy = payload["energy"]
            if record.first_incumbent_at is None:
                record.first_incumbent_at = now
                self.metrics.observe_latency(
                    record.tenant,
                    STAGE_FIRST_INCUMBENT,
                    now - record.submitted_at,
                )
            if (
                record.incumbents.maxlen is not None
                and len(record.incumbents) == record.incumbents.maxlen
            ):
                record.dropped += 1
            record.incumbents.append(payload)
        if terminal and not record.terminal:
            record.terminal_payload = payload
            record.finished_at = now
            self._tenant_outstanding[record.tenant] -= 1
            self.metrics.record_terminal(record.tenant, event)
            if event == "done":
                record.best_energy = payload["energy"]
                self.metrics.observe_latency(
                    record.tenant, STAGE_DONE, now - record.submitted_at
                )
            elif event == "failed":
                self.metrics.record_error(
                    payload.get("code", protocol.E_JOB_FAILED)
                )
            record.done.set()
        for conn in list(record.subscribers):
            conn.send(payload)
        if terminal:
            for conn in list(record.subscribers):
                conn.subscriptions.discard(record)
            record.subscribers.clear()

    # -- terminal-record purge ----------------------------------------------
    async def _purge_loop(self) -> None:
        period = min(max(self.job_ttl / 4.0, 0.05), 5.0)
        while True:
            await asyncio.sleep(period)
            cutoff = time.perf_counter() - self.job_ttl
            stale = [
                key
                for key, record in self._records.items()
                if record.terminal
                and record.finished_at is not None
                and record.finished_at < cutoff
            ]
            for key in stale:
                del self._records[key]

    # -- /metrics HTTP endpoint --------------------------------------------
    async def _metrics_connected(self, reader, writer) -> None:
        try:
            try:
                request_line = await asyncio.wait_for(reader.readline(), 5.0)
                while True:  # drain headers up to the blank line
                    header = await asyncio.wait_for(reader.readline(), 5.0)
                    if not header.strip():
                        break
            except (asyncio.TimeoutError, ConnectionError):
                return
            parts = request_line.split()
            path = parts[1].decode("latin-1") if len(parts) >= 2 else "/"
            if path not in ("/metrics", "/"):
                writer.write(
                    b"HTTP/1.0 404 Not Found\r\n"
                    b"Content-Length: 0\r\n\r\n"
                )
            else:
                snapshot = await asyncio.to_thread(self.service.stats_snapshot)
                body = render_prometheus(self.metrics, snapshot).encode()
                writer.write(
                    b"HTTP/1.0 200 OK\r\n"
                    b"Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                    + f"Content-Length: {len(body)}\r\n\r\n".encode()
                    + body
                )
            await writer.drain()
        finally:
            try:
                writer.close()
            except Exception:  # pragma: no cover - transport already gone
                pass


def run_server(
    service,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    metrics_port: int | None = 0,
    quota: TenantQuota | None = None,
    job_ttl: float = 600.0,
    max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
    on_ready=None,
) -> int:
    """Blocking convenience used by ``repro serve --listen``."""
    server = ServeServer(
        service,
        host=host,
        port=port,
        metrics_port=metrics_port,
        quota=quota,
        job_ttl=job_ttl,
        max_frame_bytes=max_frame_bytes,
    )
    return server.run(on_ready)
