"""The versioned wire protocol (DESIGN.md §13).

One codec for every front door: the stdin/stdout ``repro serve`` session
and the asyncio TCP server decode requests and encode events through the
functions here, so the two transports can never drift apart.

A *request* is one JSON object per line, wrapped in the v1 envelope::

    {"v": 1, "op": "submit", "id": "my-job", "n": 4,
     "terms": [[0, 0, -3], [0, 1, 2], [1, 1, -3]], "rounds": 5}

``v`` is the protocol version (this module speaks version 1), ``op``
selects the verb, ``id`` names the job (``submit``/``cancel``/``query``/
``attach``) or correlates a control reply (``stats``/``metrics``/...),
and the remaining keys are the op's parameters.  An *event* is one JSON
object per line the other way, always carrying ``v`` and ``event``;
``error`` and ``failed`` events additionally carry a structured ``code``
from :data:`ERROR_CODES`.

Ops: ``hello`` (declare a tenant), ``submit``, ``cancel``, ``query``
(job status snapshot), ``attach`` (re-subscribe to a job's event stream,
replaying what was missed), ``stats``, ``metrics`` (Prometheus text),
``drain``, ``shutdown``.

**Back-compat shim:** the pre-v1 protocol was the same shapes without
the ``v`` key.  :func:`decode_request` accepts such frames, marks them
``legacy=True`` and the session emits a ``DeprecationWarning`` once —
old JSON-lines clients keep working unchanged (events gain a ``v`` key,
which JSON clients ignore).  A frame that *does* carry ``v`` must say
``1``; anything else is a :data:`E_VERSION_MISMATCH` error, so a future
v2 client fails loudly instead of being half-understood.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = [
    "ERROR_CODES",
    "KNOWN_OPS",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Request",
    "decode_request",
    "encode_event",
    "error_payload",
    "limit_kwargs",
    "load_model",
    "submit_kwargs",
]

#: the protocol version this codec speaks
PROTOCOL_VERSION = 1

#: default per-frame byte budget; larger frames are rejected with
#: :data:`E_FRAME_TOO_LARGE` before JSON parsing (a 1 MiB line already
#: fits a dense inline QUBO of n ≈ 500)
MAX_FRAME_BYTES = 1 << 20

# -- structured error codes -------------------------------------------------
E_BAD_JSON = "bad-json"
E_BAD_REQUEST = "bad-request"
E_UNKNOWN_OP = "unknown-op"
E_VERSION_MISMATCH = "version-mismatch"
E_FRAME_TOO_LARGE = "frame-too-large"
E_DUPLICATE_ID = "duplicate-id"
E_UNKNOWN_JOB = "unknown-job"
E_OVERLOADED = "overloaded"
E_QUOTA_EXCEEDED = "quota-exceeded"
E_RATE_LIMITED = "rate-limited"
E_JOB_FAILED = "job-failed"
E_INTERNAL = "internal"

ERROR_CODES = frozenset(
    {
        E_BAD_JSON,
        E_BAD_REQUEST,
        E_UNKNOWN_OP,
        E_VERSION_MISMATCH,
        E_FRAME_TOO_LARGE,
        E_DUPLICATE_ID,
        E_UNKNOWN_JOB,
        E_OVERLOADED,
        E_QUOTA_EXCEEDED,
        E_RATE_LIMITED,
        E_JOB_FAILED,
        E_INTERNAL,
    }
)

KNOWN_OPS = frozenset(
    {
        "hello",
        "submit",
        "cancel",
        "query",
        "attach",
        "stats",
        "metrics",
        "drain",
        "shutdown",
    }
)

#: envelope keys that are not op parameters
_ENVELOPE_KEYS = frozenset({"v", "op", "id"})


class ProtocolError(ValueError):
    """A request that violates the wire protocol; ``code`` is one of
    :data:`ERROR_CODES` and ``message`` is the human-readable detail."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        assert code in ERROR_CODES, code
        self.code = code


@dataclass(frozen=True)
class Request:
    """One decoded request frame."""

    #: the verb (always a member of :data:`KNOWN_OPS`)
    op: str
    #: the client's job id / correlation id (``None`` when omitted)
    id: str | None
    #: the op's parameters (envelope keys stripped)
    params: dict = field(default_factory=dict)
    #: True when the frame used the pre-v1 shape (no ``v`` key)
    legacy: bool = False


def decode_request(
    line: str | bytes, *, max_bytes: int = MAX_FRAME_BYTES
) -> Request:
    """Decode one request line; raises :class:`ProtocolError` on any
    violation (oversize frame, bad JSON, bad envelope, unknown op,
    version mismatch)."""
    raw = line.encode("utf-8") if isinstance(line, str) else line
    if len(raw) > max_bytes:
        raise ProtocolError(
            E_FRAME_TOO_LARGE,
            f"frame of {len(raw)} bytes exceeds the {max_bytes}-byte limit",
        )
    try:
        payload = json.loads(raw)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(E_BAD_JSON, f"bad JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            E_BAD_REQUEST, f"request must be a JSON object, got {type(payload).__name__}"
        )
    legacy = "v" not in payload
    if not legacy:
        version = payload["v"]
        if version != PROTOCOL_VERSION:
            raise ProtocolError(
                E_VERSION_MISMATCH,
                f"unsupported protocol version {version!r} "
                f"(this server speaks v{PROTOCOL_VERSION})",
            )
    op = payload.get("op")
    if not isinstance(op, str):
        raise ProtocolError(E_BAD_REQUEST, 'request needs a string "op"')
    if op not in KNOWN_OPS:
        raise ProtocolError(E_UNKNOWN_OP, f"unknown op {op!r}")
    request_id = payload.get("id")
    if request_id is not None and not isinstance(request_id, (str, int)):
        raise ProtocolError(E_BAD_REQUEST, '"id" must be a string')
    params = {k: v for k, v in payload.items() if k not in _ENVELOPE_KEYS}
    return Request(
        op=op,
        id=str(request_id) if request_id is not None else None,
        params=params,
        legacy=legacy,
    )


def encode_event(payload: dict) -> str:
    """Serialize one event dict into its wire line (envelope added)."""
    return json.dumps({"v": PROTOCOL_VERSION, **payload})


def error_payload(code: str, message: str, **fields) -> dict:
    """Build a structured ``error`` event body."""
    assert code in ERROR_CODES, code
    return {"event": "error", "code": code, "error": message, **fields}


# -- shared submit semantics ------------------------------------------------

def load_model(params: dict):
    """Materialize a submit's instance (``file`` or inline ``n``+``terms``).

    Shared by both front-ends, so a file path and an inline triple list
    mean exactly the same thing over stdin and TCP.
    """
    from repro.core.qubo import QUBOModel
    from repro.io.formats import load_instance

    if "file" in params:
        model, _ = load_instance(params["file"], params.get("format", "auto"))
        return model
    if "terms" in params:
        n = int(params["n"])
        terms: dict = {}
        for entry in params["terms"]:
            try:
                i, j, w = entry
            except (TypeError, ValueError):
                raise ProtocolError(
                    E_BAD_REQUEST, '"terms" entries must be [i, j, w] triples'
                ) from None
            key = (int(i), int(j))
            terms[key] = terms.get(key, 0) + w
        return QUBOModel.from_dict(n, terms, name=str(params.get("name", "")))
    raise ProtocolError(E_BAD_REQUEST, 'submit needs "file" or "n"+"terms"')


def limit_kwargs(params: dict) -> dict:
    """Map a submit's wire limit fields onto ``SolveService.submit``
    keyword arguments (defaulting to a 20-round budget, as the solve CLI
    does)."""
    kwargs: dict = {}
    if "target" in params:
        kwargs["target_energy"] = int(params["target"])
    if "time_limit" in params:
        kwargs["time_limit"] = float(params["time_limit"])
    if "rounds" in params:
        kwargs["max_rounds"] = int(params["rounds"])
    if "launches" in params:
        kwargs["max_launches"] = int(params["launches"])
    if not kwargs:
        kwargs["max_rounds"] = 20
    return kwargs


def submit_kwargs(params: dict) -> dict:
    """Map a submit's scheduling fields (seed, devices, priority, share)
    onto ``SolveService.submit`` keyword arguments."""
    kwargs: dict = {
        "seed": params.get("seed"),
        "devices": params.get("devices"),
        "priority": int(params.get("priority", 0)),
        "share": float(params.get("share", 1.0)),
    }
    if kwargs["seed"] is not None:
        kwargs["seed"] = int(kwargs["seed"])
    if kwargs["devices"] is not None:
        kwargs["devices"] = int(kwargs["devices"])
    return kwargs
