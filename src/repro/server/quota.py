"""Per-tenant admission policy: outstanding-job quotas and rate limits.

Layered *in front of* the fair-share scheduler (DESIGN.md §13): the
scheduler arbitrates launch rates between admitted jobs; the quota layer
bounds what one tenant may have admitted at all, so a single chatty
client cannot fill the whole service queue or monopolize admission.

Both knobs are deliberately simple and deterministic:

* **outstanding-job quota** — at most ``max_jobs`` non-terminal jobs per
  tenant (``quota-exceeded`` error beyond that);
* **token-bucket rate limit** — ``rate`` submissions/second with a burst
  allowance of ``burst`` (``rate-limited`` error with a ``retry_after``
  hint when the bucket is dry).

The bucket takes an injectable clock so tests drive it with virtual
time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = ["TenantQuota", "TokenBucket"]


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    Not thread-safe by itself — the server calls it from its event loop
    only.
    """

    def __init__(
        self, rate: float, burst: float, *, clock=time.monotonic
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be > 0")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._last) * self.rate
        )
        self._last = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take *tokens* if available; False (and no side effect) if not."""
        self._refill()
        if self._tokens + 1e-9 >= tokens:
            self._tokens -= tokens
            return True
        return False

    def retry_after(self, tokens: float = 1.0) -> float:
        """Seconds until *tokens* will be available at the refill rate."""
        self._refill()
        deficit = tokens - self._tokens
        return max(0.0, deficit / self.rate)


@dataclass(frozen=True)
class TenantQuota:
    """The per-tenant admission policy (uniform across tenants for now).

    ``max_jobs=None`` / ``rate=None`` disable the respective check.
    """

    #: max non-terminal jobs one tenant may have outstanding
    max_jobs: int | None = None
    #: sustained submissions/second per tenant
    rate: float | None = None
    #: burst allowance of the rate limiter (ignored when ``rate`` is None)
    burst: float = 10.0

    def make_bucket(self, *, clock=time.monotonic) -> TokenBucket | None:
        """A fresh bucket for one tenant (None when rate-limiting is off)."""
        if self.rate is None:
            return None
        return TokenBucket(self.rate, self.burst, clock=clock)
