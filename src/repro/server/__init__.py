"""Network-grade serving (DESIGN.md §13).

The deployable front door of the solve service: a versioned JSON-lines
wire protocol (:mod:`repro.server.protocol`, shared with the stdin
``repro serve`` mode), an asyncio TCP server multiplexing many
persistent client connections over one :class:`~repro.service.SolveService`
or :class:`~repro.federation.Federation`
(:mod:`repro.server.server`), per-tenant quotas and token-bucket rate
limits (:mod:`repro.server.quota`), and a Prometheus-style ``/metrics``
exporter (:mod:`repro.server.metrics`).

The matching client SDK is :class:`repro.client.Client`.
"""

from repro.server.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    decode_request,
    encode_event,
    error_payload,
)
from repro.server.quota import TenantQuota, TokenBucket
from repro.server.server import ServeServer, run_server

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Request",
    "ServeServer",
    "TenantQuota",
    "TokenBucket",
    "decode_request",
    "encode_event",
    "error_payload",
    "run_server",
]
