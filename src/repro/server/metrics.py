"""Server observability: counters, latency percentiles, Prometheus text.

:class:`ServerMetrics` is the server-side ledger — connection and job
counters, structured error tallies, and per-tenant latency recorders for
the two stages the ROADMAP names: **admission → first incumbent** and
**admission → done**.  :func:`render_prometheus` joins that ledger with
the scheduler's typed :class:`~repro.service.stats.ServiceStats` /
:class:`~repro.service.stats.FederationStats` snapshot (queue depth,
lane utilization, cache hit rate, coalesce counters) into one
Prometheus-style text exposition, served on the ``/metrics`` endpoint
and the ``metrics`` op.

All mutation happens on the server's event loop thread, so the ledger
needs no locks; a snapshot taken for rendering is therefore internally
consistent.
"""

from __future__ import annotations

from collections import deque

__all__ = ["LatencyRecorder", "ServerMetrics", "render_prometheus"]

#: latency stages recorded per tenant
STAGE_FIRST_INCUMBENT = "first_incumbent"
STAGE_DONE = "done"

#: quantiles exported per (tenant, stage)
_QUANTILES = (0.5, 0.9, 0.99)


class LatencyRecorder:
    """Bounded-window latency sampler with exact percentiles.

    Keeps the most recent *cap* observations (a sliding window, not a
    sketch — at serving rates of thousands of jobs the window still
    spans minutes) plus lifetime ``count``/``total`` for rate math.
    """

    def __init__(self, cap: int = 4096) -> None:
        self._samples: deque[float] = deque(maxlen=cap)
        self.count = 0
        self.total = 0.0

    def observe(self, seconds: float) -> None:
        self._samples.append(float(seconds))
        self.count += 1
        self.total += float(seconds)

    def quantile(self, q: float) -> float | None:
        """The q-quantile (nearest-rank) of the window; None when empty."""
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[rank]

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            **{f"p{int(q * 100)}": self.quantile(q) for q in _QUANTILES},
        }


class ServerMetrics:
    """The server's counter ledger (event-loop confined)."""

    def __init__(self) -> None:
        self.connections_total = 0
        self.connections_active = 0
        self.connections_peak = 0
        self.frames_total = 0
        #: submissions accepted, per tenant
        self.submits: dict[str, int] = {}
        #: terminal jobs per (tenant, status in done/failed/cancelled)
        self.jobs: dict[tuple[str, str], int] = {}
        #: error events per structured code
        self.errors: dict[str, int] = {}
        #: latency recorders per (tenant, stage)
        self.latency: dict[tuple[str, str], LatencyRecorder] = {}
        #: legacy (pre-v1) frames accepted through the compat shim
        self.legacy_frames = 0

    # -- recording hooks ---------------------------------------------------
    def connection_opened(self) -> None:
        self.connections_total += 1
        self.connections_active += 1
        self.connections_peak = max(
            self.connections_peak, self.connections_active
        )

    def connection_closed(self) -> None:
        self.connections_active -= 1

    def record_frame(self, legacy: bool = False) -> None:
        self.frames_total += 1
        if legacy:
            self.legacy_frames += 1

    def record_submit(self, tenant: str) -> None:
        self.submits[tenant] = self.submits.get(tenant, 0) + 1

    def record_terminal(self, tenant: str, status: str) -> None:
        key = (tenant, status)
        self.jobs[key] = self.jobs.get(key, 0) + 1

    def record_error(self, code: str) -> None:
        self.errors[code] = self.errors.get(code, 0) + 1

    def observe_latency(self, tenant: str, stage: str, seconds: float) -> None:
        key = (tenant, stage)
        recorder = self.latency.get(key)
        if recorder is None:
            recorder = self.latency[key] = LatencyRecorder()
        recorder.observe(seconds)

    # -- snapshots ---------------------------------------------------------
    @property
    def errors_total(self) -> int:
        return sum(self.errors.values())

    def snapshot(self) -> dict:
        """The ``stats`` op's server section (JSON-safe)."""
        return {
            "connections": self.connections_active,
            "connections_total": self.connections_total,
            "connections_peak": self.connections_peak,
            "frames": self.frames_total,
            "legacy_frames": self.legacy_frames,
            "submits": dict(self.submits),
            "jobs": {
                f"{tenant}/{status}": count
                for (tenant, status), count in self.jobs.items()
            },
            "errors": dict(self.errors),
            "latency": {
                f"{tenant}/{stage}": recorder.summary()
                for (tenant, stage), recorder in self.latency.items()
            },
        }


def _esc(value: str) -> str:
    """Escape a Prometheus label value."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def render_prometheus(metrics: ServerMetrics, snapshot) -> str:
    """Render the full exposition: server ledger + scheduler snapshot.

    *snapshot* is a :class:`~repro.service.stats.ServiceStats` or
    :class:`~repro.service.stats.FederationStats` — both expose the same
    lane/cache/coalesce surface (DESIGN.md §13), so one renderer covers
    single-service and federated deployments.
    """
    lines: list[str] = []

    def emit(name: str, kind: str, help_text: str, samples) -> None:
        rows = list(samples)
        if not rows:
            return
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, value in rows:
            if value is None:
                continue
            label_str = (
                "{"
                + ",".join(f'{k}="{_esc(v)}"' for k, v in labels.items())
                + "}"
                if labels
                else ""
            )
            lines.append(f"{name}{label_str} {value}")

    # -- server ledger ----------------------------------------------------
    emit(
        "repro_connections_active",
        "gauge",
        "Open client connections.",
        [({}, metrics.connections_active)],
    )
    emit(
        "repro_connections_total",
        "counter",
        "Client connections accepted over the server lifetime.",
        [({}, metrics.connections_total)],
    )
    emit(
        "repro_connections_peak",
        "gauge",
        "High-water mark of concurrently open connections.",
        [({}, metrics.connections_peak)],
    )
    emit(
        "repro_frames_total",
        "counter",
        "Request frames decoded (legacy shim frames included).",
        [({}, metrics.frames_total)],
    )
    emit(
        "repro_legacy_frames_total",
        "counter",
        "Pre-v1 frames accepted through the back-compat shim.",
        [({}, metrics.legacy_frames)],
    )
    emit(
        "repro_submits_total",
        "counter",
        "Jobs accepted, per tenant.",
        [({"tenant": t}, c) for t, c in sorted(metrics.submits.items())],
    )
    emit(
        "repro_jobs_total",
        "counter",
        "Terminal jobs, per tenant and outcome.",
        [
            ({"tenant": t, "status": s}, c)
            for (t, s), c in sorted(metrics.jobs.items())
        ],
    )
    emit(
        "repro_errors_total",
        "counter",
        "Error events, per structured protocol code.",
        [({"code": code}, c) for code, c in sorted(metrics.errors.items())],
    )

    # -- latency percentiles ----------------------------------------------
    latency_rows = []
    count_rows = []
    sum_rows = []
    for (tenant, stage), recorder in sorted(metrics.latency.items()):
        for q in _QUANTILES:
            latency_rows.append(
                (
                    {"tenant": tenant, "stage": stage, "quantile": str(q)},
                    recorder.quantile(q),
                )
            )
        count_rows.append(({"tenant": tenant, "stage": stage}, recorder.count))
        sum_rows.append(({"tenant": tenant, "stage": stage}, recorder.total))
    emit(
        "repro_latency_seconds",
        "gauge",
        "Per-tenant job latency quantiles by stage "
        "(admission to first incumbent / admission to done).",
        latency_rows,
    )
    emit(
        "repro_latency_seconds_count",
        "counter",
        "Observations behind repro_latency_seconds.",
        count_rows,
    )
    emit(
        "repro_latency_seconds_sum",
        "counter",
        "Summed latency behind repro_latency_seconds.",
        sum_rows,
    )

    # -- scheduler snapshot -----------------------------------------------
    if snapshot is not None:
        emit(
            "repro_devices",
            "gauge",
            "Fleet lanes (virtual GPUs) behind the service.",
            [({}, snapshot.devices)],
        )
        emit(
            "repro_jobs_pending",
            "gauge",
            "Jobs queued for admission (queue depth).",
            [({}, snapshot.pending)],
        )
        emit(
            "repro_jobs_active",
            "gauge",
            "Jobs holding lane affinities.",
            [({}, snapshot.active)],
        )
        emit(
            "repro_jobs_outstanding",
            "gauge",
            "Total non-terminal jobs (pending + active).",
            [({}, snapshot.outstanding)],
        )
        emit(
            "repro_lane_inflight",
            "gauge",
            "Launches in flight, per lane.",
            [
                ({"lane": str(i)}, v)
                for i, v in enumerate(snapshot.lane_inflight)
            ],
        )
        emit(
            "repro_lane_launches_total",
            "counter",
            "Launches submitted per lane (utilization counter).",
            [
                ({"lane": str(i)}, v)
                for i, v in enumerate(snapshot.lane_launches)
            ],
        )
        emit(
            "repro_lane_completed_total",
            "counter",
            "Launches collected per lane.",
            [
                ({"lane": str(i)}, v)
                for i, v in enumerate(snapshot.lane_completed)
            ],
        )
        cache = snapshot.cache
        emit(
            "repro_cache_entries",
            "gauge",
            "Prepared-problem cache entries.",
            [({}, cache.entries)],
        )
        emit(
            "repro_cache_hits_total",
            "counter",
            "Prepared-problem cache hits.",
            [({}, cache.hits)],
        )
        emit(
            "repro_cache_misses_total",
            "counter",
            "Prepared-problem cache misses.",
            [({}, cache.misses)],
        )
        emit(
            "repro_cache_evictions_total",
            "counter",
            "Prepared-problem cache evictions.",
            [({}, cache.evictions)],
        )
        emit(
            "repro_cache_hit_rate",
            "gauge",
            "Cache hits over lookups.",
            [({}, cache.hit_rate)],
        )
        coalesce = snapshot.coalesce
        emit(
            "repro_coalesce_packs_total",
            "counter",
            "Fused super-launches issued.",
            [({}, coalesce.packs)],
        )
        emit(
            "repro_coalesce_segments_total",
            "counter",
            "Launches packed into super-launches.",
            [({}, coalesce.segments)],
        )
        emit(
            "repro_coalesce_launches_saved_total",
            "counter",
            "Launch slots saved by fusing (segments - packs).",
            [({}, coalesce.launches_saved)],
        )
        emit(
            "repro_coalesce_pack_splits_total",
            "counter",
            "Failed packs split back into solo launches.",
            [({}, coalesce.pack_splits)],
        )
        emit(
            "repro_coalesce_rows_max",
            "gauge",
            "Largest single pack (total rows).",
            [({}, coalesce.rows_max)],
        )
        islands = getattr(snapshot, "island_stats", None)
        if islands is not None:
            emit(
                "repro_islands",
                "gauge",
                "Federation islands (configured).",
                [({}, snapshot.islands)],
            )
            emit(
                "repro_islands_dead",
                "gauge",
                "Islands declared dead by the watchdog.",
                [({}, len(snapshot.dead_islands))],
            )
            emit(
                "repro_island_outstanding",
                "gauge",
                "Outstanding jobs per island.",
                [
                    ({"island": str(i)}, s.outstanding)
                    for i, s in enumerate(islands)
                    if s is not None
                ],
            )
    return "\n".join(lines) + "\n"
