"""The island process: one full solve service plus the migration loop.

Each federation island is a forked process running ``island_main`` — a
command loop over the controller pipe in the main thread, one worker
thread per federated job, and a long-lived
:class:`~repro.service.SolveService` that owns the island's fleet.  A
job shard is solved as a sequence of *epochs*: each epoch submits the
island's (persistent) solver for ``migration_period`` more launches via
``submit_solver`` — repeated submissions continue the solver's pools and
RNG streams exactly like repeated ``solve()`` calls — then exchanges
top-K elites with the topology neighbours before the next epoch starts.

Migration ordering guarantees (DESIGN.md §9):

* every island sends exactly one message per out-edge per epoch (elites,
  possibly zero rows), and a ``done`` sentinel per out-edge when it
  stops producing — so a blocking collect always terminates;
* elites are **published before collection** each epoch, which makes the
  epoch barrier deadlock-free in any topology;
* incoming migrants are folded in ascending source-island order, row *j*
  into pool ``j % num_pools`` — insertion order is a pure function of
  (topology, epoch), never of message arrival timing, so fixed seeds
  plus ``virtual_time`` replay make the merged pools bit-reproducible.

A single-island federation (or one with migration disabled) skips the
epoch segmentation entirely and submits the job's limits verbatim, which
is what makes it bit-exact with a direct ``SolveService`` solve.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from collections import deque
from dataclasses import replace

import numpy as np

from repro.core.packet import VOID_ENERGY
from repro.resilience import chaos
from repro.federation.transport import (
    MigrationMessage,
    in_neighbors,
    out_neighbors,
)
from repro.ga.adaptive import SelectionCounters
from repro.service.job import JobCancelledError
from repro.service.service import SolveService
from repro.solver.abs_solver import ABSSolver
from repro.solver.dabs import DABSSolver

__all__ = ["SOLVER_REGISTRY", "island_main", "island_seed"]

#: solver classes a federated submit may name (workers resolve by name —
#: classes never cross the process boundary)
SOLVER_REGISTRY = {"dabs": DABSSolver, "abs": ABSSolver}

#: seconds between abort-flag checks while blocked on a migration source
_POLL = 0.02

#: odd 64-bit constant decorrelating per-island RNG streams
_SEED_STRIDE = 0x9E3779B97F4A7C15

#: seconds between heartbeat events to the controller (the controller's
#: island_timeout watchdog compares arrival gaps against this cadence)
HEARTBEAT_PERIOD = 0.25

#: exit code of a chaos ``island_kill`` death (tests assert it)
CHAOS_EXIT_CODE = 13


def island_seed(base: int, island: int) -> int:
    """Deterministic per-island seed derivation.

    Island 0 keeps the base seed unchanged — the single-island federation
    must construct the *identical* solver a direct service submit would —
    and every other island offsets by a large odd stride so neighbouring
    islands never share a Mersenne-twister stream.
    """
    if island == 0:
        return base
    return (base + island * _SEED_STRIDE) % (2**63)


def _take_elites(pools, k: int):
    """Top-*k* packet rows across all of the island's pools.

    Pools are energy-sorted, so the global top-k is a stable argsort over
    the concatenated energy columns (ties resolve to the lower pool
    index, then the better rank — deterministic).  Rows still at void
    energy (unreturned random prefill) are never migrated; early epochs
    may therefore ship fewer than *k* rows, or none.
    """
    energies = np.concatenate([p.energies for p in pools])
    vectors = np.concatenate([p.vectors for p in pools])
    algorithms = np.concatenate([p.algorithms for p in pools])
    operations = np.concatenate([p.operations for p in pools])
    order = np.argsort(energies, kind="stable")[:k]
    order = order[energies[order] < VOID_ENERGY]
    return (
        vectors[order].copy(),
        energies[order].copy(),
        algorithms[order].copy(),
        operations[order].copy(),
    )


def _insert_migrants(pools, message: MigrationMessage) -> int:
    """Fold one elites message into the island's pools; returns rows kept.

    Row *j* goes to pool ``j % len(pools)`` — the deterministic round-
    robin spray that seeds every pool of the ring with foreign elites
    instead of concentrating them in one.
    """
    rows = 0 if message.vectors is None else message.vectors.shape[0]
    if rows == 0:
        return 0
    inserted = 0
    for index, pool in enumerate(pools):
        take = np.arange(index, rows, len(pools))
        if take.size == 0:
            continue
        inserted += pool.insert_batch(
            message.vectors[take],
            message.energies[take],
            message.algorithms[take],
            message.operations[take],
        )
    return inserted


class _Mailbox:
    """Demultiplexes one endpoint's edges into per-(job, source) streams.

    Transport edges are shared by every concurrently federated job, so a
    receive for job A may surface job B's message first; it is stashed
    and replayed when B's collect comes around.  Per (job, source) the
    stream is ordered (one FIFO per edge), so the collect for epoch *e*
    only ever sees epoch-*e* elites or the source's ``done`` sentinel.
    """

    def __init__(self, endpoint, timeout: float | None = None) -> None:
        self._endpoint = endpoint
        self._stash: dict[tuple[str, int], deque] = {}
        self._drained: set[tuple[str, int]] = set()
        #: islands the controller declared dead — treated as permanently
        #: drained for every job, so no collect ever blocks on them
        self._dead_sources: set[int] = set()
        #: per-collect wait bound for lossy transports; None (the
        #: deterministic default) blocks until the source publishes,
        #: drains or is declared dead
        self._timeout = timeout
        #: collects abandoned because the bound expired (migrants lost)
        self.timeouts = 0

    def mark_dead(self, island: int) -> None:
        """Degraded-topology mode (DESIGN.md §11): *island* will never
        publish again; collects on it return None immediately, including
        a collect currently blocked in its poll loop."""
        self._dead_sources.add(island)

    def collect(
        self, job_id: str, src: int, epoch: int, abort: threading.Event
    ) -> MigrationMessage | None:
        """Block until *src*'s epoch-*epoch* elites for *job_id* arrive.

        Returns None when the source is drained (``done`` sentinel), dead
        (controller broadcast), *abort* is set, or the migration timeout
        expires (a lossy transport dropped the epoch's batch) — all mean
        "no migrants this epoch"."""
        key = (job_id, src)
        deadline = (
            None
            if self._timeout is None
            else time.monotonic() + self._timeout
        )
        while True:
            stash = self._stash.get(key)
            if stash:
                message = stash.popleft()
                if message.kind == "done":
                    self._drained.add(key)
                    return None
                if message.epoch == epoch:
                    return message
                continue  # stale epoch (post-abort catch-up): drop
            if key in self._drained or src in self._dead_sources:
                return None
            message = self._endpoint.recv(src, _POLL)
            if message is None:
                if abort.is_set():
                    return None
                if deadline is not None and time.monotonic() > deadline:
                    self.timeouts += 1
                    return None
                continue
            self._stash.setdefault((message.job_id, src), deque()).append(
                message
            )

    def forget(self, job_id: str) -> None:
        """Drop a finished job's stashed messages."""
        for key in [k for k in self._stash if k[0] == job_id]:
            del self._stash[key]
            self._drained.discard(key)


class _Accumulator:
    """Merges one island's per-segment results into island-job totals."""

    def __init__(self) -> None:
        self.best_energy = int(VOID_ENERGY)
        self.best_vector = None
        self.first_found = None
        self.reached_target = False
        self.time_to_target = None
        self.history = []
        self.launches = 0
        self.rounds = 0
        self.flips = 0
        self.restarts = 0
        self.truncations = 0
        self.truncation_events = 0
        self.retries = 0
        self.degraded_reasons: list[str] = []
        self.run_elapsed = 0.0  # sum of segment solve times (no waits)

    def fold(self, result) -> None:
        if result is None:
            return
        self.retries += getattr(result, "retries", 0)
        if getattr(result, "degraded", False):
            self.degraded_reasons.extend(result.degraded_reasons)
        offset = self.run_elapsed
        if result.best_energy < self.best_energy:
            self.best_energy = int(result.best_energy)
            self.best_vector = result.best_vector.copy()
            self.first_found = result.first_found
        self.history.extend(
            replace(event, time=event.time + offset) for event in result.history
        )
        self.reached_target = self.reached_target or result.reached_target
        if self.time_to_target is None and result.time_to_target is not None:
            self.time_to_target = offset + result.time_to_target
        self.launches += result.launches
        self.rounds += result.rounds
        self.flips += result.total_flips
        self.restarts += result.restarts
        self.truncations += result.greedy_truncations
        self.truncation_events += result.greedy_truncation_warnings
        self.run_elapsed += result.elapsed


class _IslandJob:
    """Per-job state on the island (command loop + job thread)."""

    def __init__(self, job_id: str, payload: dict) -> None:
        self.id = job_id
        self.payload = payload
        self.halt = threading.Event()
        self.cancelled = False
        self.thread: threading.Thread | None = None
        self.current = None  # the in-flight segment's JobHandle
        self.lock = threading.Lock()
        #: extra launch budget granted by the controller when a peer
        #: island died (its shard redistributed to survivors); written by
        #: the command loop, read by the job thread each epoch
        self.extra = 0

    def interrupt(self, cancelled: bool) -> None:
        if cancelled:
            self.cancelled = True
        self.halt.set()
        with self.lock:
            handle = self.current
        if handle is not None:
            handle.cancel()


def _segment_kwargs(payload: dict, seg: int | None, deadline) -> dict:
    kwargs = {}
    if payload.get("target_energy") is not None:
        kwargs["target_energy"] = payload["target_energy"]
    if deadline is not None:
        kwargs["time_limit"] = max(deadline - time.monotonic(), 1e-6)
    if seg is not None:
        kwargs["max_launches"] = seg
    return kwargs


def _run_job(context: dict, job: _IslandJob) -> None:
    """One federated job shard, run on its own island thread."""
    island = context["island"]
    islands = context["islands"]
    topology = context["topology"]
    service: SolveService = context["service"]
    endpoint = context["endpoint"]
    mailbox: _Mailbox = context["mailbox"]
    emit = context["emit"]
    payload = job.payload

    try:
        model = payload["model"]
        cfg = payload["config"]
        solver_cls = SOLVER_REGISTRY[payload["solver"]]
        prepared = service.cache.prepare(model, cfg.backend)
        solver = solver_cls(model, cfg, seed=payload["seed"], prepared=prepared)
    except Exception as exc:
        emit(("failed", job.id, island, _describe(exc)))
        _send_done(endpoint, topology, islands, island, job.id)
        return

    out = out_neighbors(topology, islands, island)
    sources = in_neighbors(topology, islands, island)
    period = payload["migration_period"]
    migrate = islands > 1 and period is not None
    k = payload["migration_k"]
    acc = _Accumulator()
    migrants_in = migrants_out = epoch = 0
    deadline = (
        None
        if payload.get("time_limit") is None
        else time.monotonic() + payload["time_limit"]
    )
    budgets = []
    if payload.get("max_launches") is not None:
        budgets.append(payload["max_launches"])
    if payload.get("max_rounds") is not None:
        budgets.append(payload["max_rounds"] * cfg.num_gpus)
    budget = min(budgets) if budgets else None
    started = time.perf_counter()

    def segment(seg_kwargs: dict):
        def on_improvement(update):
            emit(
                (
                    "incumbent",
                    job.id,
                    island,
                    int(update.energy),
                    update.vector,
                    acc.run_elapsed + update.elapsed,
                )
            )

        handle = service.submit_solver(
            solver,
            priority=payload["priority"],
            share=payload["share"],
            on_improvement=on_improvement,
            **seg_kwargs,
        )
        with job.lock:
            job.current = handle
        if job.halt.is_set():
            handle.cancel()
        try:
            return handle.result()
        except JobCancelledError:
            return None
        finally:
            with job.lock:
                job.current = None

    failure = None
    try:
        if not migrate:
            if chaos.fire("island_kill", who=island):
                os._exit(CHAOS_EXIT_CODE)
            if budget is not None and budget <= 0:
                pass  # zero-launch share (aggregate budget < islands)
            else:
                # one verbatim submission: identical limits, identical
                # scheduling — the bit-exactness path for islands == 1
                kwargs = _segment_kwargs(
                    payload, payload.get("max_launches"), deadline
                )
                if payload.get("max_rounds") is not None:
                    kwargs["max_rounds"] = payload["max_rounds"]
                result = segment(kwargs)
                acc.fold(result)
                if acc.reached_target:
                    emit(("target", job.id, island))
        else:
            while not job.halt.is_set():
                if chaos.fire("island_kill", who=island):
                    os._exit(CHAOS_EXIT_CODE)
                remaining = (
                    None
                    if budget is None
                    else budget + job.extra - acc.launches
                )
                if remaining is not None and remaining <= 0:
                    break
                if deadline is not None and time.monotonic() >= deadline:
                    break
                seg = period if remaining is None else min(period, remaining)
                result = segment(_segment_kwargs(payload, seg, deadline))
                acc.fold(result)
                # per-epoch spend tally: if this island dies, the
                # controller redistributes only the unspent remainder
                emit(("progress", job.id, island, acc.launches))
                if acc.reached_target:
                    emit(("target", job.id, island))
                    break
                if job.halt.is_set():
                    break
                # epoch barrier: publish, then collect in source order
                vectors, energies, algorithms, operations = _take_elites(
                    solver.pools, k
                )
                for dst in out:
                    endpoint.send(
                        dst,
                        MigrationMessage(
                            job.id,
                            island,
                            epoch,
                            "elites",
                            vectors,
                            energies,
                            algorithms,
                            operations,
                        ),
                    )
                migrants_out += vectors.shape[0] * len(out)
                for src in sources:
                    message = mailbox.collect(job.id, src, epoch, job.halt)
                    if message is not None:
                        migrants_in += _insert_migrants(solver.pools, message)
                epoch += 1
    except Exception as exc:  # solver/policy failure: report, free peers
        failure = _describe(exc)
    finally:
        _send_done(endpoint, topology, islands, island, job.id)
        if mailbox is not None:
            mailbox.forget(job.id)

    if failure is not None:
        emit(("failed", job.id, island, failure))
        return
    report = _report(
        island, acc, solver, epoch, migrants_in, migrants_out, started, payload
    )
    if job.cancelled:
        emit(("cancelled", job.id, island, report))
    else:
        emit(("done", job.id, island, report))


def _send_done(endpoint, topology, islands, island, job_id) -> None:
    """Tell every out-neighbour this island is drained for *job_id*."""
    if endpoint is None:
        return
    for dst in out_neighbors(topology, islands, island):
        try:
            endpoint.send(dst, MigrationMessage.done(job_id, island, -1))
        except Exception:  # pragma: no cover - peer teardown race
            pass


def _describe(exc: BaseException) -> str:
    return "".join(
        traceback.format_exception_only(type(exc), exc)
    ).strip()


def _report(
    island, acc: _Accumulator, solver, epochs, migrants_in, migrants_out,
    started, payload,
) -> dict:
    report = {
        "island": island,
        "best_energy": acc.best_energy,
        "best_vector": (
            None if acc.best_vector is None else acc.best_vector.copy()
        ),
        "first_found": acc.first_found,
        "reached_target": acc.reached_target,
        "time_to_target": acc.time_to_target,
        "history": acc.history,
        "launches": acc.launches,
        "rounds": acc.rounds,
        "flips": acc.flips,
        "restarts": acc.restarts,
        "truncations": acc.truncations,
        "truncation_events": acc.truncation_events,
        "retries": acc.retries,
        "degraded_reasons": list(acc.degraded_reasons),
        "elapsed": time.perf_counter() - started,
        "epochs": epochs,
        "migrants_in": migrants_in,
        "migrants_out": migrants_out,
        "counters": _copy_counters(solver.counters),
        "state": None,
    }
    if payload.get("collect_state"):
        report["state"] = {
            "pools": [
                {
                    "vectors": pool.vectors.copy(),
                    "energies": pool.energies.copy(),
                    "algorithms": pool.algorithms.copy(),
                    "operations": pool.operations.copy(),
                }
                for pool in solver.pools
            ],
            "rng": [gpu.rng_state.copy() for gpu in solver.gpus],
            "block_x": [gpu.block_x.copy() for gpu in solver.gpus],
        }
    return report


def _copy_counters(counters: SelectionCounters) -> SelectionCounters:
    snapshot = SelectionCounters()
    snapshot.merge(counters)
    return snapshot


def island_main(
    island: int,
    islands: int,
    topology: str,
    cmd,
    evt,
    endpoint,
    options: dict,
) -> None:
    """Island process entry point (runs until ``stop`` or controller EOF).

    Commands arrive on *cmd* (a ``Connection``): ``("solve", job_id,
    payload)``, ``("cancel", job_id)``, ``("halt", job_id)`` — the
    early-stop broadcast after another island reached the target —
    ``("dead", island)`` — a peer died; reroute migration around it —
    ``("extend", job_id, extra)`` — absorb part of a dead peer's launch
    budget — ``("stats", request_id)`` and ``("stop",)``.  Events leave
    on *evt* from whichever thread produced them, serialized by one
    lock; a dedicated thread additionally emits ``("hb", island)``
    heartbeats so the controller's watchdog can tell a hung island from
    a busy one (the command loop itself blocks on ``recv``), and each
    job thread emits ``("progress", job_id, island, launches)`` per
    epoch so degrade-mode redistribution knows the spent budget.
    """
    evt_lock = threading.Lock()

    def emit(event: tuple) -> None:
        with evt_lock:
            try:
                evt.send(event)
            except (BrokenPipeError, OSError):  # controller went away
                pass

    hb_stop = threading.Event()

    def heartbeat() -> None:
        while not hb_stop.wait(HEARTBEAT_PERIOD):
            emit(("hb", island))

    threading.Thread(
        target=heartbeat, name=f"island-{island}-hb", daemon=True
    ).start()

    mailbox = (
        _Mailbox(endpoint, timeout=options.get("migration_timeout"))
        if endpoint is not None
        else None
    )
    jobs: dict[str, _IslandJob] = {}
    service = SolveService(
        devices=options["devices"],
        default_config=options["config"],
        lane_depth=options.get("lane_depth", 2),
        seed=options.get("seed"),
    )
    context = {
        "island": island,
        "islands": islands,
        "topology": topology,
        "service": service,
        "endpoint": endpoint,
        "mailbox": mailbox,
        "emit": emit,
    }
    try:
        with service:
            emit(("up", island))
            while True:
                try:
                    message = cmd.recv()
                except (EOFError, OSError):
                    for job in jobs.values():
                        job.interrupt(cancelled=True)
                    break
                op = message[0]
                if op == "solve":
                    job = _IslandJob(message[1], message[2])
                    jobs[job.id] = job
                    job.thread = threading.Thread(
                        target=_run_job,
                        args=(context, job),
                        name=f"island-{island}-{job.id}",
                        daemon=True,
                    )
                    job.thread.start()
                elif op in ("cancel", "halt"):
                    job = jobs.get(message[1])
                    if job is not None:
                        job.interrupt(cancelled=op == "cancel")
                elif op == "dead":
                    # a peer island died: stop waiting on (and sending
                    # to) it — the degraded-topology reroute
                    if mailbox is not None:
                        mailbox.mark_dead(message[1])
                    if endpoint is not None:
                        endpoint.mark_dead(message[1])
                elif op == "extend":
                    job = jobs.get(message[1])
                    if job is not None:
                        job.extra += message[2]
                elif op == "stats":
                    emit(("stats", message[1], {"island": island, **service.stats()}))
                elif op == "stop":
                    break
            for job in jobs.values():
                if job.thread is not None:
                    job.thread.join()
    finally:
        hb_stop.set()
        try:
            evt.close()
        except OSError:  # pragma: no cover
            pass
