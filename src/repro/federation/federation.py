"""The federation controller: process-per-island sharding of a solve.

:class:`Federation` is the client-facing twin of
:class:`~repro.service.SolveService` one level up the scaling axis
(DESIGN.md §9): instead of one scheduler thread over one in-process
fleet, it owns N *island processes* — each a full ``SolveService`` with
its own fleet, pools and GIL — connected in a migration topology.  A
submitted job fans out as one shard per island (same model and config,
per-island RNG streams via :func:`~repro.federation.worker.island_seed`,
an even split of the aggregate launch budget), the islands exchange
top-K elites every ``migration_period`` launches through the transport
seam (:mod:`repro.federation.transport`), and the controller merges the
island results into one :class:`~repro.solver.result.SolveResult`.

Lifecycle: islands fork lazily on the first submit and live until
:meth:`close` (spawn → serve many jobs → drain → shutdown); one reader
thread per island streams its events (incumbents, epoch completions,
failures) back into the controller.  Health is observed, not polled —
islands heartbeat over the event pipe and an optional watchdog
(``island_timeout``) terminates hung islands so their reader sees EOF.

An island process dying mid-job is handled per ``on_island_failure``
(DESIGN.md §11): in ``"degrade"`` mode (the default) the survivors
absorb the dead island's remaining launch budget, migration edges into
the dead island become counted no-ops, and the merged result is
annotated ``degraded`` with the contributing islands; in ``"fail"``
mode the job's federated handle fails with a :class:`FederationError`
instead of hanging.

Limit semantics of a federated submit:

* ``target_energy`` / ``time_limit`` — broadcast to every island; the
  first island to reach the target triggers an early-stop ``halt`` of
  the others.
* ``max_launches`` — the *aggregate* budget, split evenly across
  islands.
* ``max_rounds`` — per island (one round = one launch per island
  device), matching the per-fleet meaning it has everywhere else.

A single-island federation skips migration entirely and is bit-exact
with a direct ``SolveService`` solve of the same (model, config, seed) —
pools, energies and device RNG lanes included — under ``virtual_time``
(asserted by ``tests/federation/``).
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import threading
import time
from dataclasses import replace

import numpy as np

from repro.core.packet import VOID_ENERGY
from repro.federation.transport import TOPOLOGIES, TRANSPORTS, make_transport
from repro.federation.worker import SOLVER_REGISTRY, island_main, island_seed
from repro.ga.adaptive import SelectionCounters
from repro.service.job import IncumbentUpdate, JobHandle, JobStatus
from repro.service.service import ServiceClosedError, ServiceOverloadedError
from repro.solver.dabs import DABSConfig
from repro.solver.result import SolveResult
from repro.solver.termination import SolveLimits

__all__ = [
    "Federation",
    "FederationError",
    "FederationHandle",
    "PROCESS_NAME_PREFIX",
    "solve",
]

#: island processes are named with this prefix (leak checks key on it)
PROCESS_NAME_PREFIX = "repro-federation-island"

#: seconds the controller waits for island stats / orderly process exit
_STATS_TIMEOUT = 10.0
_JOIN_TIMEOUT = 10.0


class FederationError(RuntimeError):
    """An island process failed or the platform cannot run a federation."""


class FederationHandle(JobHandle):
    """Client-side view of one federated job.

    The :class:`~repro.service.JobHandle` surface (status, wait, cancel,
    result, streamed incumbents) plus the per-island reports the merged
    result was built from.
    """

    def __init__(self, job_id: str, federation: "Federation") -> None:
        super().__init__(job_id, federation)
        self._island_reports: list[dict] = []

    def island_reports(self, timeout: float | None = None) -> list[dict]:
        """Per-island shard reports, in island order, blocking until
        terminal.  Each report carries the island's own best, launch and
        migration counts — and its final pools / RNG lane states when the
        job was submitted with ``collect_state=True``."""
        if not self._done.wait(timeout):
            raise TimeoutError(f"job {self.job_id} still {self.status.value}")
        return list(self._island_reports)


class _FederatedJob:
    """Controller-side state of one fan-out (guarded by Federation._lock)."""

    __slots__ = (
        "id",
        "n",
        "handle",
        "statuses",
        "reports",
        "best_energy",
        "cancel_requested",
        "halted",
        "error",
        "on_improvement",
        "started",
        "lost",
        "shares",
        "spent",
    )

    def __init__(self, job_id: str, n: int, handle: FederationHandle) -> None:
        self.id = job_id
        self.n = n
        self.handle = handle
        self.statuses: dict[int, str] = {}
        self.reports: dict[int, dict | None] = {}
        self.best_energy = int(VOID_ENERGY)
        self.cancel_requested = False
        self.halted = False
        self.error: BaseException | None = None
        self.on_improvement = None
        self.started = time.perf_counter()
        self.lost: list[int] = []
        #: per-island launch-budget share, including absorbed ``extend``
        #: grants from earlier island deaths
        self.shares: list[int | None] = []
        #: island -> launches spent so far, from per-epoch ``progress``
        #: events (what degrade-mode redistribution subtracts)
        self.spent: dict[int, int] = {}


def _split_budget(total: int | None, islands: int) -> list[int | None]:
    """Even per-island shares of an aggregate launch budget."""
    if total is None:
        return [None] * islands
    base, extra = divmod(total, islands)
    return [base + (1 if i < extra else 0) for i in range(islands)]


class Federation:
    """N island processes behind one ``SolveService``-shaped front."""

    def __init__(
        self,
        islands: int = 2,
        *,
        topology: str = "ring",
        transport: str = "queue",
        migration_period: int | None = 16,
        migration_k: int = 4,
        default_config: DABSConfig | None = None,
        devices: int | None = None,
        lane_depth: int = 2,
        seed: int | None = None,
        max_queue: int | None = None,
        slab_vars: int = 4096,
        island_timeout: float | None = None,
        on_island_failure: str = "degrade",
        migration_timeout: float | None = None,
    ) -> None:
        if islands < 1:
            raise ValueError("islands must be >= 1")
        if island_timeout is not None and island_timeout <= 0:
            raise ValueError("island_timeout must be > 0 or None")
        if migration_timeout is not None and migration_timeout <= 0:
            raise ValueError("migration_timeout must be > 0 or None")
        if on_island_failure not in ("degrade", "fail"):
            raise ValueError(
                "on_island_failure must be 'degrade' or 'fail', "
                f"got {on_island_failure!r}"
            )
        if topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {topology!r} (known: {', '.join(TOPOLOGIES)})"
            )
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r} "
                f"(known: {', '.join(TRANSPORTS)})"
            )
        if migration_period is not None and migration_period < 1:
            raise ValueError("migration_period must be >= 1 or None")
        if migration_k < 1:
            raise ValueError("migration_k must be >= 1")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be >= 1 or None")
        self.num_islands = islands
        self.topology = topology
        self.transport_name = transport
        self.migration_period = migration_period
        self.migration_k = migration_k
        self.devices = (
            devices
            if devices is not None
            else (default_config.num_gpus if default_config else 2)
        )
        if self.devices < 1:
            raise ValueError("devices must be >= 1")
        self.lane_depth = lane_depth
        self.default_config = default_config or DABSConfig(
            num_gpus=self.devices, blocks_per_gpu=8, pool_capacity=20
        )
        self.max_queue = max_queue
        self.slab_vars = slab_vars
        self.island_timeout = island_timeout
        self.on_island_failure = on_island_failure
        self.migration_timeout = migration_timeout
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()
        self._space = threading.Condition(self._lock)
        self._counter = itertools.count(1)
        self._jobs: dict[str, _FederatedJob] = {}
        self._stats_pending: dict[int, dict] = {}
        self._stats_counter = itertools.count(1)
        self._processes: list[mp.process.BaseProcess] = []
        self._cmd_conns: list = []
        self._cmd_locks: list[threading.Lock] = []
        self._readers: list[threading.Thread] = []
        self._transport = None
        self._closing = False
        self._closed = False
        self._dead_islands: set[int] = set()
        self._last_seen: dict[int, float] = {}
        self._watchdog: threading.Thread | None = None
        self._watchdog_stop = threading.Event()

    # -- lifecycle ---------------------------------------------------------
    def _ensure_running_locked(self) -> None:
        if self._processes:
            return
        try:
            ctx = mp.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX
            raise FederationError(
                "federation islands need the fork start method "
                "(POSIX only)"
            ) from exc
        if self.num_islands > 1:
            self._transport = make_transport(
                self.transport_name,
                ctx,
                self.num_islands,
                self.topology,
                migration_k=self.migration_k,
                slab_vars=self.slab_vars,
            )
        base_seed = int(self._rng.integers(2**63))
        for island in range(self.num_islands):
            cmd_recv, cmd_send = ctx.Pipe(duplex=False)
            evt_recv, evt_send = ctx.Pipe(duplex=False)
            endpoint = (
                self._transport.endpoint(island) if self._transport else None
            )
            options = {
                "devices": self.devices,
                "config": replace(self.default_config, num_gpus=self.devices),
                "lane_depth": self.lane_depth,
                "seed": island_seed(base_seed, island),
                "migration_timeout": self.migration_timeout,
            }
            process = ctx.Process(
                target=island_main,
                args=(
                    island,
                    self.num_islands,
                    self.topology,
                    cmd_recv,
                    evt_send,
                    endpoint,
                    options,
                ),
                name=f"{PROCESS_NAME_PREFIX}-{island}",
                daemon=True,
            )
            process.start()
            cmd_recv.close()
            evt_send.close()
            self._last_seen[island] = time.monotonic()
            self._processes.append(process)
            self._cmd_conns.append(cmd_send)
            self._cmd_locks.append(threading.Lock())
            reader = threading.Thread(
                target=self._reader,
                args=(island, evt_recv),
                name=f"federation-reader-{island}",
                daemon=True,
            )
            reader.start()
            self._readers.append(reader)
        if self.island_timeout is not None and self._watchdog is None:
            self._watchdog = threading.Thread(
                target=self._watchdog_loop,
                name="federation-watchdog",
                daemon=True,
            )
            self._watchdog.start()

    def _watchdog_loop(self) -> None:
        """Hang detection: islands heartbeat every ``HEARTBEAT_PERIOD``
        seconds; one that goes silent for ``island_timeout`` is killed so
        its reader thread sees EOF and the normal island-loss path
        (:meth:`_on_island_exit`) takes over."""
        period = max(0.05, self.island_timeout / 4.0)
        while not self._watchdog_stop.wait(period):
            now = time.monotonic()
            with self._lock:
                if self._closing or not self._processes:
                    return
                stale = [
                    (island, self._processes[island])
                    for island in range(self.num_islands)
                    if island not in self._dead_islands
                    and self._processes[island].is_alive()
                    and now - self._last_seen.get(island, now)
                    > self.island_timeout
                ]
            for island, process in stale:
                process.terminate()
                process.join(1.0)
                if process.is_alive():  # pragma: no cover - stuck in kernel
                    process.kill()
                    process.join(1.0)

    def _send(self, island: int, message: tuple) -> None:
        with self._cmd_locks[island]:
            try:
                self._cmd_conns[island].send(message)
            except (BrokenPipeError, OSError):
                pass  # the reader notices the dead island and fails jobs

    def close(self, cancel: bool = False) -> None:
        """Drain (default) or cancel outstanding jobs, then shut every
        island process down.  Idempotent."""
        with self._lock:
            self._closing = True
            outstanding = list(self._jobs.values())
        if cancel:
            for job in outstanding:
                self._request_cancel(job.id)
        for job in outstanding:
            job.handle.wait()
        self._watchdog_stop.set()
        for island in range(len(self._cmd_conns)):
            self._send(island, ("stop",))
        for process in self._processes:
            process.join(_JOIN_TIMEOUT)
            if process.is_alive():  # pragma: no cover - hung island
                process.terminate()
                process.join(1.0)
                if process.is_alive():
                    process.kill()
                    process.join(1.0)
        for conn in self._cmd_conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        for reader in self._readers:
            reader.join(_JOIN_TIMEOUT)
        if self._watchdog is not None:
            self._watchdog.join(1.0)
            self._watchdog = None
        if self._transport is not None:
            self._transport.close()
            self._transport = None
        self._processes.clear()
        self._cmd_conns.clear()
        self._cmd_locks.clear()
        self._readers.clear()
        self._closed = True

    def __enter__(self) -> "Federation":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def healthy(self) -> bool:
        """True when every spawned island process is alive (vacuously
        true before the lazy spawn)."""
        return all(p.is_alive() for p in self._processes)

    # -- submission --------------------------------------------------------
    def submit(
        self,
        model,
        *,
        config: DABSConfig | None = None,
        seed: int | None = None,
        solver_cls=None,
        devices: int | None = None,
        target_energy: int | None = None,
        time_limit: float | None = None,
        max_rounds: int | None = None,
        max_launches: int | None = None,
        priority: int = 0,
        share: float = 1.0,
        on_improvement=None,
        block: bool = True,
        timeout: float | None = None,
        collect_state: bool = False,
    ) -> FederationHandle:
        """Fan one job out across every island; returns the merged handle.

        *config* is the **per-island** solver configuration (its
        ``num_gpus`` is each island's device count, clamped to the
        island fleet); *seed* is the base of the per-island RNG streams.
        *solver_cls* may be a registered class (``DABSSolver`` /
        ``ABSSolver``) or its registry name — islands resolve solvers by
        name, classes never cross the process boundary.
        ``collect_state=True`` makes each island attach its final pools
        and RNG lane states to its report (the bit-exactness probes).
        """
        SolveLimits(target_energy, time_limit, max_rounds, max_launches)
        if share <= 0:
            raise ValueError("share must be > 0")
        solver_name = self._solver_name(solver_cls)
        cfg = config or self.default_config
        want = devices if devices is not None else cfg.num_gpus
        if want < 1:
            raise ValueError("devices must be >= 1")
        cfg = replace(cfg, num_gpus=min(want, self.devices))
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                if self._closing:
                    raise ServiceClosedError("federation is closed")
                if self.max_queue is None or len(self._jobs) < self.max_queue:
                    break
                if not block:
                    raise ServiceOverloadedError(
                        f"job queue full ({self.max_queue} outstanding)"
                    )
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise ServiceOverloadedError(
                            f"job queue full ({self.max_queue} outstanding); "
                            f"timed out after {timeout}s"
                        )
                self._space.wait(remaining)
            if seed is None:
                seed = int(self._rng.integers(2**63))
            job_id = f"fed-{next(self._counter)}"
            handle = FederationHandle(job_id, self)
            job = _FederatedJob(job_id, model.n, handle)
            job.on_improvement = on_improvement
            self._ensure_running_locked()
            live = [
                island
                for island in range(self.num_islands)
                if island not in self._dead_islands
            ]
            if not live:
                raise FederationError(
                    "every island process is lost; the federation "
                    "cannot run jobs"
                )
            # budget goes to the live islands only; islands already lost
            # are pre-marked so completion counting stays exact
            shares: list[int | None] = [0] * self.num_islands
            live_shares = _split_budget(max_launches, len(live))
            for k, island in enumerate(live):
                shares[island] = live_shares[k]
            job.shares = shares
            for island in range(self.num_islands):
                if island not in self._dead_islands:
                    continue
                job.statuses[island] = "lost"
                job.lost.append(island)
            self._jobs[job_id] = job
        for island in live:
            payload = {
                "model": model,
                "config": cfg,
                "seed": island_seed(seed, island),
                "solver": solver_name,
                "target_energy": target_energy,
                "time_limit": time_limit,
                "max_rounds": max_rounds,
                "max_launches": shares[island],
                "migration_period": self.migration_period,
                "migration_k": self.migration_k,
                "priority": priority,
                "share": share,
                "collect_state": collect_state,
            }
            self._send(island, ("solve", job_id, payload))
        handle._mark_running()
        return handle

    @staticmethod
    def _solver_name(solver_cls) -> str:
        if solver_cls is None:
            return "dabs"
        if isinstance(solver_cls, str):
            if solver_cls not in SOLVER_REGISTRY:
                raise ValueError(
                    f"unknown solver {solver_cls!r} "
                    f"(known: {', '.join(SOLVER_REGISTRY)})"
                )
            return solver_cls
        for name, cls in SOLVER_REGISTRY.items():
            if cls is solver_cls:
                return name
        raise ValueError(
            "federation islands resolve solvers by registry name; "
            f"{solver_cls!r} is not in repro.federation.worker.SOLVER_REGISTRY"
        )

    def solve_many(self, requests) -> list[SolveResult]:
        """Submit a batch of jobs and wait for all results, in order
        (the :meth:`SolveService.solve_many` surface, federated)."""
        handles = [
            self.submit(request.pop("model"), **request)
            for request in (dict(r) for r in requests)
        ]
        return [handle.result() for handle in handles]

    # -- introspection -----------------------------------------------------
    def stats_snapshot(self):
        """Typed federation snapshot (DESIGN.md §13): the controller state
        plus one :class:`~repro.service.stats.ServiceStats` per island —
        the structure the Prometheus exporter and tests read, of which
        :meth:`stats` is the dict projection."""
        from repro.service.stats import FederationStats

        return FederationStats.from_dict(self.stats())

    def stats(self) -> dict:
        """Federation-wide snapshot: controller state plus each island's
        service stats (lanes, queues, cache and per-lane utilization)."""
        with self._lock:
            snapshot = {
                "islands": self.num_islands,
                "topology": self.topology,
                "transport": self.transport_name,
                "migration_period": self.migration_period,
                "migration_k": self.migration_k,
                "outstanding": len(self._jobs),
                "running": bool(self._processes),
                "healthy": all(p.is_alive() for p in self._processes),
                "dead_islands": sorted(self._dead_islands),
            }
            if not self._processes:
                snapshot["island_stats"] = []
                return snapshot
            live = [
                island
                for island in range(self.num_islands)
                if island not in self._dead_islands
            ]
            request_id = next(self._stats_counter)
            pending = {"event": threading.Event(), "payloads": {}}
            self._stats_pending[request_id] = pending
        for island in live:
            self._send(island, ("stats", request_id))
        deadline = time.monotonic() + _STATS_TIMEOUT
        while len(pending["payloads"]) < len(live):
            remaining = deadline - time.monotonic()
            alive = all(self._processes[i].is_alive() for i in live)
            if remaining <= 0 or not alive:
                break
            pending["event"].wait(min(remaining, 0.05))
            pending["event"].clear()
        with self._lock:
            self._stats_pending.pop(request_id, None)
        island_stats = [
            pending["payloads"].get(i) for i in range(self.num_islands)
        ]
        snapshot["island_stats"] = island_stats
        snapshot["devices"] = sum(
            s["devices"] for s in island_stats if s is not None
        )
        snapshot["lane_launches"] = [
            lane
            for s in island_stats
            if s is not None
            for lane in s["lane_launches"]
        ]
        return snapshot

    # -- cancellation ------------------------------------------------------
    def _request_cancel(self, job_id: str) -> None:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return
            job.cancel_requested = True
        for island in range(self.num_islands):
            self._send(island, ("cancel", job_id))

    # -- island event plumbing ---------------------------------------------
    def _reader(self, island: int, evt) -> None:
        while True:
            try:
                event = evt.recv()
            except (EOFError, OSError):
                self._on_island_exit(island)
                return
            try:
                self._dispatch(island, event)
            except Exception:  # pragma: no cover - defensive: keep reading
                pass

    def _dispatch(self, island: int, event: tuple) -> None:
        # any event proves the island alive (one writer per island: its
        # reader thread; dict stores are atomic under the GIL)
        self._last_seen[island] = time.monotonic()
        kind = event[0]
        if kind in ("up", "hb"):
            return
        if kind == "stats":
            _, request_id, payload = event
            with self._lock:
                pending = self._stats_pending.get(request_id)
                if pending is not None:
                    pending["payloads"][island] = payload
                    pending["event"].set()
            return
        job_id = event[1]
        if kind == "progress":
            # per-epoch launch tally; _on_island_exit subtracts it when
            # redistributing a dead island's budget share
            with self._lock:
                job = self._jobs.get(job_id)
                if job is not None:
                    job.spent[event[2]] = event[3]
            return
        if kind == "incumbent":
            self._on_incumbent(island, event)
            return
        if kind == "target":
            with self._lock:
                job = self._jobs.get(job_id)
                if job is None or job.halted:
                    return
                job.halted = True
            for other in range(self.num_islands):
                if other != island:
                    self._send(other, ("halt", job_id))
            return
        if kind in ("done", "cancelled", "failed"):
            with self._lock:
                job = self._jobs.get(job_id)
                if job is None or island in job.statuses:
                    return
                job.statuses[island] = kind
                if kind == "failed":
                    detail = event[3]
                    if job.error is None:
                        job.error = FederationError(
                            f"island {island}: {detail}"
                        )
                else:
                    job.reports[island] = event[3]
                complete = len(job.statuses) == self.num_islands
                failed = kind == "failed"
            if failed:
                # free the healthy islands instead of letting them run
                # a doomed job to completion
                for other in range(self.num_islands):
                    if other != island:
                        self._send(other, ("cancel", job_id))
            if complete:
                self._finalize(job)

    def _on_incumbent(self, island: int, event: tuple) -> None:
        _, job_id, _, energy, vector, elapsed = event
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or energy >= job.best_energy:
                return
            job.best_energy = int(energy)
            callback = job.on_improvement
            handle = job.handle
        update = IncumbentUpdate(
            job_id=job_id,
            energy=int(energy),
            vector=np.asarray(vector, dtype=np.uint8),
            elapsed=float(elapsed),
        )
        handle._push_incumbent(update)
        if callback is not None:
            try:
                callback(update)
            except Exception:  # client callback failures stay client-side
                pass

    def _on_island_exit(self, island: int) -> None:
        """An island's event pipe hit EOF: the process died (crash, kill,
        watchdog) — absorb the loss per ``on_island_failure``.

        ``"degrade"`` re-routes around the corpse: survivors are told the
        island is dead (their transport sends to it become counted
        no-ops and pending migration collects stop waiting on it), each
        in-flight job's unspent shard budget is redistributed to the
        islands still working that job, and the merged result comes out
        ``degraded``.  ``"fail"`` keeps the strict pre-resilience
        behavior: the job's handle fails with a
        :class:`FederationError`."""
        finalize: list[_FederatedJob] = []
        extends: list[tuple[int, str, int]] = []
        notify: list[int] = []
        cancels: list[str] = []
        with self._lock:
            if self._closing or island in self._dead_islands:
                return
            self._dead_islands.add(island)
            degrade = self.on_island_failure == "degrade"
            live = [
                other
                for other in range(self.num_islands)
                if other not in self._dead_islands
            ]
            notify = list(live) if degrade else []
            for job in self._jobs.values():
                if island in job.statuses:
                    continue
                if degrade:
                    job.statuses[island] = "lost"
                    job.lost.append(island)
                    survivors = [
                        other for other in live if other not in job.statuses
                    ]
                    share = (
                        job.shares[island]
                        if island < len(job.shares)
                        else None
                    )
                    if share:
                        # only the unspent remainder moves; progress is
                        # reported per epoch, so a mid-epoch death can
                        # still overshoot by < migration_period launches
                        share = max(share - job.spent.get(island, 0), 0)
                    if survivors and share:
                        extra = _split_budget(share, len(survivors))
                        for k, dst in enumerate(survivors):
                            if extra[k]:
                                # grow the survivor's recorded share so a
                                # later death redistributes the grant too
                                job.shares[dst] += extra[k]
                        extends.extend(
                            (dst, job.id, extra[k])
                            for k, dst in enumerate(survivors)
                            if extra[k]
                        )
                    if not live and job.error is None:
                        job.error = FederationError(
                            f"job {job.id}: all {self.num_islands} "
                            "islands lost"
                        )
                else:
                    job.statuses[island] = "failed"
                    if job.error is None:
                        job.error = FederationError(
                            f"island {island} exited unexpectedly"
                        )
                    # free the survivors: cancel the doomed job so their
                    # migration collects stop waiting on the dead peer
                    cancels.extend(
                        (other, job.id)
                        for other in live
                        if other not in job.statuses
                    )
                if len(job.statuses) == self.num_islands:
                    finalize.append(job)
        for dst in notify:
            self._send(dst, ("dead", island))
        for dst, job_id, extra in extends:
            self._send(dst, ("extend", job_id, extra))
        for dst, job_id in cancels:
            self._send(dst, ("cancel", job_id))
        for job in finalize:
            self._finalize(job)

    # -- result merging ----------------------------------------------------
    def _finalize(self, job: _FederatedJob) -> None:
        with self._lock:
            self._jobs.pop(job.id, None)
            self._space.notify_all()
            reports = [
                job.reports.get(i)
                for i in range(self.num_islands)
                if job.reports.get(i) is not None
            ]
            job.handle._island_reports = reports
            if job.error is not None and not job.cancel_requested:
                status, result = JobStatus.FAILED, None
            else:
                started = any(r["launches"] > 0 for r in reports)
                cancelled = job.cancel_requested or any(
                    s == "cancelled" for s in job.statuses.values()
                )
                status = JobStatus.CANCELLED if cancelled else JobStatus.DONE
                result = (
                    self._merge(job, reports)
                    if reports and (started or not cancelled)
                    else None
                )
            job.handle._finalize(status, result, job.error)

    def _merge(self, job: _FederatedJob, reports: list[dict]) -> SolveResult:
        """One :class:`SolveResult` from the island shard reports.

        Best solution: minimum energy, first island in id order on ties.
        Launch/flip/restart totals are summed; ``rounds`` is the maximum
        island round count (islands run concurrently, rounds are not
        additive).  Histories are concatenated in island-local time order
        — island clocks all start at shard start, so the merged history
        is the federation's improvement trace to segment precision.

        A merge over fewer islands than were asked for (some lost
        mid-solve) or over shards that degraded internally (backend
        fallback) is flagged ``degraded`` with reasons naming the lost
        and contributing islands; shard retry counts are summed into
        ``retries``.
        """
        best_energy = int(VOID_ENERGY)
        best_vector = np.zeros(job.n, dtype=np.uint8)
        first_found = None
        counters = SelectionCounters()
        history = []
        time_to_target = None
        reached = False
        for report in reports:
            if report["best_energy"] < best_energy:
                best_energy = report["best_energy"]
                best_vector = np.asarray(report["best_vector"], dtype=np.uint8)
                first_found = report["first_found"]
            counters.merge(report["counters"])
            history.extend(report["history"])
            reached = reached or report["reached_target"]
            if report["time_to_target"] is not None and (
                time_to_target is None
                or report["time_to_target"] < time_to_target
            ):
                time_to_target = report["time_to_target"]
        history.sort(key=lambda event: event.time)
        reasons: list[str] = []
        lost = sorted(job.lost)
        if lost:
            contributing = sorted(
                i
                for i in range(self.num_islands)
                if job.reports.get(i) is not None
            )
            reasons.append(
                f"islands {lost} lost mid-solve; "
                f"merged from islands {contributing}"
            )
        for report in reports:
            reasons.extend(report.get("degraded_reasons", ()))
        return SolveResult(
            best_vector=best_vector,
            best_energy=best_energy,
            reached_target=reached,
            time_to_target=time_to_target,
            elapsed=time.perf_counter() - job.started,
            rounds=max((r["rounds"] for r in reports), default=0),
            total_flips=sum(r["flips"] for r in reports),
            counters=counters,
            first_found=first_found,
            history=history,
            restarts=sum(r["restarts"] for r in reports),
            launches=sum(r["launches"] for r in reports),
            greedy_truncations=sum(r["truncations"] for r in reports),
            greedy_truncation_warnings=sum(
                r["truncation_events"] for r in reports
            ),
            retries=sum(r.get("retries", 0) for r in reports),
            degraded=bool(reasons),
            degraded_reasons=tuple(reasons),
        )


def solve(
    model,
    islands: int = 2,
    config: DABSConfig | None = None,
    seed: int | None = None,
    *,
    topology: str = "ring",
    transport: str = "queue",
    migration_period: int | None = 16,
    migration_k: int = 4,
    island_timeout: float | None = None,
    on_island_failure: str = "degrade",
    **limits,
) -> SolveResult:
    """One-shot convenience: stand a federation up, run one job, tear
    down.  A real deployment keeps one long-lived :class:`Federation`
    and submits many jobs to it."""
    with Federation(
        islands,
        topology=topology,
        transport=transport,
        migration_period=migration_period,
        migration_k=migration_k,
        default_config=config,
        seed=seed,
        island_timeout=island_timeout,
        on_island_failure=on_island_failure,
    ) as federation:
        return federation.submit(model, config=config, seed=seed, **limits).result()
