"""Distributed island federation: process-per-island sharding with
periodic elite migration (DESIGN.md §9).

:class:`Federation` owns N island processes — each a full
:class:`~repro.service.SolveService` over its own fleet — fans jobs out
as per-island shards, exchanges top-K elites through a pluggable
transport every ``migration_period`` launches, and merges the shard
results into one :class:`~repro.solver.result.SolveResult`.
"""

from repro.federation.federation import (
    PROCESS_NAME_PREFIX,
    Federation,
    FederationError,
    FederationHandle,
    solve,
)
from repro.federation.transport import (
    TOPOLOGIES,
    TRANSPORTS,
    MigrationMessage,
    make_transport,
)
from repro.federation.worker import SOLVER_REGISTRY, island_seed

__all__ = [
    "Federation",
    "FederationError",
    "FederationHandle",
    "MigrationMessage",
    "PROCESS_NAME_PREFIX",
    "SOLVER_REGISTRY",
    "TOPOLOGIES",
    "TRANSPORTS",
    "island_seed",
    "make_transport",
    "solve",
]
