"""Migration transports: how elites move between federation islands.

A federation (DESIGN.md §9) runs one full solve service per *island
process*; the only inter-island traffic is periodic top-K elite migration.
This module is the seam that traffic crosses, so the federation logic is
transport-agnostic: every transport builds one unidirectional channel per
directed topology edge before the islands fork, and hands each island an
*endpoint* exposing exactly two operations::

    endpoint.send(dst, message)          # never blocks the epoch loop
    endpoint.recv(src, timeout) -> message | None

Messages (:class:`MigrationMessage`) are either an ``"elites"`` batch —
the four packet columns of the sender's current top-K — or a ``"done"``
sentinel telling the receiver the sender will produce no more migrants
for that job (finished, cancelled or failed), which is what keeps the
per-epoch blocking collect deadlock-free.

Three transports, selected by name through :data:`TRANSPORTS`:

* ``"queue"`` — one ``multiprocessing.Queue`` per edge; messages are
  pickled whole.  The robust default.
* ``"slab"`` — per-edge rings of :class:`~repro.core.packet.SharedBatchSlab`
  slots: elite columns are written into fork-shared pages and only a tiny
  control tuple crosses the queue, the same pickle-free boundary the
  ``async-process`` engine uses.  Payloads wider than the preallocated
  ``slab_vars`` fall back to the pickled path transparently.
* ``"socket"`` — stub with the same interface for the cross-machine
  deployment this seam exists for; constructing an endpoint raises
  ``NotImplementedError`` today.

All channels are created *before* the island processes fork (anonymous
mmaps and ``multiprocessing`` queues are inherited, never pickled), which
is why a transport instance is built once per federation, not per job.
"""

from __future__ import annotations

import queue as queue_module
import time
from dataclasses import dataclass

import numpy as np

from repro.core.packet import SharedBatchSlab
from repro.resilience import chaos

__all__ = [
    "MigrationMessage",
    "QueueTransport",
    "SlabTransport",
    "SocketTransport",
    "TOPOLOGIES",
    "TRANSPORTS",
    "in_neighbors",
    "make_transport",
    "out_neighbors",
    "topology_edges",
]

#: supported island topologies
TOPOLOGIES = ("ring", "all")


def topology_edges(name: str, islands: int) -> list[tuple[int, int]]:
    """Directed migration edges ``(src, dst)`` of a named topology.

    ``"ring"`` sends island *i*'s elites to island ``(i+1) % N`` (the
    paper's Fig. 2 cyclic order, lifted from pools to processes);
    ``"all"`` is all-to-all.  A single island has no edges in either.
    """
    if name not in TOPOLOGIES:
        raise ValueError(
            f"unknown topology {name!r} (known: {', '.join(TOPOLOGIES)})"
        )
    if islands < 1:
        raise ValueError("islands must be >= 1")
    if islands == 1:
        return []
    if name == "ring":
        return [(i, (i + 1) % islands) for i in range(islands)]
    return [
        (i, j) for i in range(islands) for j in range(islands) if i != j
    ]


def out_neighbors(name: str, islands: int, island: int) -> list[int]:
    """Islands *island* sends elites to, in ascending id order."""
    return sorted(d for s, d in topology_edges(name, islands) if s == island)


def in_neighbors(name: str, islands: int, island: int) -> list[int]:
    """Islands *island* receives elites from, in ascending id order.

    The epoch loop collects sources in exactly this order, which is part
    of the migration determinism contract (DESIGN.md §9): insertion order
    is a pure function of the topology, never of message arrival timing.
    """
    return sorted(s for s, d in topology_edges(name, islands) if d == island)


@dataclass(frozen=True)
class MigrationMessage:
    """One unit of inter-island traffic.

    ``kind="elites"`` carries the four packet columns of the sender's
    top-K (``rows × n`` vectors plus per-row energies/strategies);
    ``kind="done"`` carries no columns and marks the sender drained for
    *job_id* — the receiver stops waiting for it at every later epoch.
    """

    job_id: str
    src: int
    epoch: int
    kind: str  # "elites" | "done"
    vectors: np.ndarray | None = None
    energies: np.ndarray | None = None
    algorithms: np.ndarray | None = None
    operations: np.ndarray | None = None

    @classmethod
    def done(cls, job_id: str, src: int, epoch: int) -> "MigrationMessage":
        return cls(job_id, src, epoch, "done")


def _chaos_send_intercepts(message: MigrationMessage) -> bool:
    """Shared chaos hook of every endpoint ``send``: True drops it."""
    if chaos.fire("transport_delay", who=message.src):
        time.sleep(chaos.delay_seconds())
    return chaos.fire("transport_drop", who=message.src)


class _QueueEndpoint:
    """One island's view of a :class:`QueueTransport`.

    Dead-peer hardening (DESIGN.md §11): after :meth:`mark_dead`, sends
    to that island become counted no-ops — a survivor must never block
    (or grow a queue unboundedly) publishing elites to a peer that will
    never drain them.
    """

    def __init__(self, island: int, outgoing: dict, incoming: dict) -> None:
        self.island = island
        self._out = outgoing  # dst -> Queue
        self._in = incoming  # src -> Queue
        self._dead: set[int] = set()
        #: messages dropped because the destination was marked dead
        #: (or by chaos transport_drop injection)
        self.dropped = 0

    def mark_dead(self, island: int) -> None:
        """Stop sending to *island*; subsequent sends count as dropped."""
        self._dead.add(island)

    def send(self, dst: int, message: MigrationMessage) -> None:
        if dst in self._dead or _chaos_send_intercepts(message):
            self.dropped += 1
            return
        self._out[dst].put(message)

    def recv(self, src: int, timeout: float) -> MigrationMessage | None:
        try:
            return self._in[src].get(timeout=timeout)
        except queue_module.Empty:
            return None

    def close(self) -> None:  # queues are shared; nothing island-local
        pass


class QueueTransport:
    """Per-edge ``multiprocessing.Queue`` channels (pickled payloads)."""

    name = "queue"

    def __init__(self, ctx, islands: int, topology: str, **_: object) -> None:
        self.islands = islands
        self.topology = topology
        self._queues = {
            edge: ctx.Queue() for edge in topology_edges(topology, islands)
        }

    def endpoint(self, island: int) -> _QueueEndpoint:
        outgoing = {d: q for (s, d), q in self._queues.items() if s == island}
        incoming = {s: q for (s, d), q in self._queues.items() if d == island}
        return _QueueEndpoint(island, outgoing, incoming)

    def close(self) -> None:
        for q in self._queues.values():
            q.close()


class _SlabEdge:
    """One directed edge's shared-memory ring: S slab slots + two queues.

    ``free`` hands out writable slot indices (pre-filled with every
    slot); ``control`` carries either ``("slab", message-sans-columns,
    slot, rows, n)`` for payloads that fit the preallocated pages, or
    ``("inline", message)`` for oversized ones.  The receiver copies the
    columns out and recycles the slot, so a slot is never overwritten
    while readable — the same snapshot-then-recycle protocol as
    :class:`~repro.engine.workers.ProcessWorkerGroup`.
    """

    def __init__(self, ctx, depth: int, rows: int, slab_vars: int) -> None:
        self.slabs = [SharedBatchSlab(rows, slab_vars) for _ in range(depth)]
        self.control = ctx.Queue()
        self.free = ctx.Queue()
        for slot in range(depth):
            self.free.put(slot)


class _SlabEndpoint:
    """One island's view of a :class:`SlabTransport`.

    Dead-peer hardening (DESIGN.md §11): a dead destination's ring will
    never recycle its slots, so a blocking ``free.get()`` could wedge the
    sender forever.  Sends to a :meth:`mark_dead` island are counted
    no-ops, and slot acquisition polls with a short timeout, rechecking
    liveness each round — a peer marked dead *while* the sender waits
    converts the send into a drop instead of a deadlock.
    """

    def __init__(self, island: int, outgoing: dict, incoming: dict) -> None:
        self.island = island
        self._out = outgoing  # dst -> _SlabEdge
        self._in = incoming  # src -> _SlabEdge
        self._dead: set[int] = set()
        #: messages dropped because the destination was marked dead
        #: (or by chaos transport_drop injection)
        self.dropped = 0

    def mark_dead(self, island: int) -> None:
        """Stop sending to *island*; subsequent sends count as dropped."""
        self._dead.add(island)

    def send(self, dst: int, message: MigrationMessage) -> None:
        if dst in self._dead or _chaos_send_intercepts(message):
            self.dropped += 1
            return
        edge = self._out[dst]
        slab = edge.slabs[0]
        if (
            message.kind != "elites"
            or message.vectors.shape[0] > slab.batch_size
            or message.vectors.shape[1] > slab.n
        ):
            edge.control.put(("inline", message))
            return
        while True:  # ring full: poll, rechecking the peer's liveness
            try:
                slot = edge.free.get(timeout=0.05)
                break
            except queue_module.Empty:
                if dst in self._dead:
                    self.dropped += 1
                    return
        slab = edge.slabs[slot]
        rows, n = message.vectors.shape
        slab.vectors[:rows, :n] = message.vectors
        slab.energies[:rows] = message.energies
        slab.algorithms[:rows] = message.algorithms
        slab.operations[:rows] = message.operations
        header = MigrationMessage(
            message.job_id, message.src, message.epoch, message.kind
        )
        edge.control.put(("slab", header, slot, rows, n))

    def recv(self, src: int, timeout: float) -> MigrationMessage | None:
        edge = self._in[src]
        try:
            item = edge.control.get(timeout=timeout)
        except queue_module.Empty:
            return None
        if item[0] == "inline":
            return item[1]
        _, header, slot, rows, n = item
        slab = edge.slabs[slot]
        message = MigrationMessage(
            header.job_id,
            header.src,
            header.epoch,
            header.kind,
            vectors=slab.vectors[:rows, :n].copy(),
            energies=slab.energies[:rows].copy(),
            algorithms=slab.algorithms[:rows].copy(),
            operations=slab.operations[:rows].copy(),
        )
        edge.free.put(slot)  # columns copied out: slot is writable again
        return message

    def close(self) -> None:
        pass


class SlabTransport:
    """Shared-memory elite columns; only control tuples are pickled."""

    name = "slab"

    #: in-flight migration batches an edge can buffer before send blocks
    DEPTH = 4

    def __init__(
        self,
        ctx,
        islands: int,
        topology: str,
        *,
        migration_k: int = 4,
        slab_vars: int = 4096,
        **_: object,
    ) -> None:
        if migration_k < 1:
            raise ValueError("migration_k must be >= 1")
        if slab_vars < 1:
            raise ValueError("slab_vars must be >= 1")
        self.islands = islands
        self.topology = topology
        self._edges = {
            edge: _SlabEdge(ctx, self.DEPTH, migration_k, slab_vars)
            for edge in topology_edges(topology, islands)
        }

    def endpoint(self, island: int) -> _SlabEndpoint:
        outgoing = {d: e for (s, d), e in self._edges.items() if s == island}
        incoming = {s: e for (s, d), e in self._edges.items() if d == island}
        return _SlabEndpoint(island, outgoing, incoming)

    def close(self) -> None:
        for edge in self._edges.values():
            edge.control.close()
            edge.free.close()


class SocketTransport:
    """Cross-machine transport stub (same interface, not yet implemented).

    The federation's migration protocol only needs the two endpoint
    operations, so spanning machines is a transport swap: this class
    reserves the name and the constructor signature (``address`` will
    name the peer map).  Everything raises ``NotImplementedError`` until
    the wire format lands.
    """

    name = "socket"

    def __init__(
        self, ctx, islands: int, topology: str, *, address=None, **_: object
    ) -> None:
        self.islands = islands
        self.topology = topology
        self.address = address

    def endpoint(self, island: int):
        raise NotImplementedError(
            "the socket migration transport is a stub; use 'queue' or "
            "'slab' for single-machine federations"
        )

    def close(self) -> None:
        pass


#: registry the ``--transport`` flag resolves through
TRANSPORTS = {
    "queue": QueueTransport,
    "slab": SlabTransport,
    "socket": SocketTransport,
}


def make_transport(name: str, ctx, islands: int, topology: str, **kwargs):
    """Build the named transport's channels (call before forking islands)."""
    try:
        cls = TRANSPORTS[name]
    except KeyError:
        raise ValueError(
            f"unknown transport {name!r} (known: {', '.join(TRANSPORTS)})"
        ) from None
    return cls(ctx, islands, topology, **kwargs)
