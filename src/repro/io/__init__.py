"""Benchmark file formats (Gset, QAPLIB, QUBO interchange)."""

from repro.io.formats import (
    read_gset,
    read_qaplib,
    read_qubo,
    write_gset,
    write_qaplib,
    write_qubo,
)

__all__ = [
    "read_gset",
    "read_qaplib",
    "read_qubo",
    "write_gset",
    "write_qaplib",
    "write_qubo",
]
