"""Benchmark file formats: Gset, QAPLIB, and a QUBO interchange format.

The paper evaluates on instances distributed in two classic formats that
this module reads and writes, so the scaled generators can be swapped for
the real files when they are available:

* **Gset** ([34], MaxCut): a header line ``n m`` followed by ``m`` lines
  ``i j w`` with 1-based node indices.
* **QAPLIB** ([36], QAP): the size ``n`` followed by the n×n flow matrix
  and the n×n distance matrix, whitespace-separated (line breaks are not
  significant).

Plus a simple QUBO interchange format (one ``i j w`` coordinate per line,
0-based, ``#`` comments) for persisting arbitrary models.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.qubo import QUBOModel
from repro.problems.qap import QAPInstance

__all__ = [
    "load_instance",
    "read_gset",
    "read_qaplib",
    "read_qubo",
    "write_gset",
    "write_qaplib",
    "write_qubo",
]


def load_instance(path, fmt: str = "auto") -> tuple[QUBOModel, dict]:
    """Load any supported benchmark file as a QUBO model.

    The one place the extension-based auto-detection rule lives (the
    solve CLI and ``repro serve`` both dispatch through it): ``.qubo`` is
    the coordinate format, ``.dat`` QAPLIB, anything else is tried as a
    Gset graph.  MaxCut/QAP inputs are reduced to QUBO with the paper's
    constructions; the returned context dict carries what a caller needs
    to decode results (``adjacency``, or ``qap`` + ``penalty``).
    """
    from repro.problems.maxcut import maxcut_to_qubo

    if fmt == "auto":
        lower = str(path).lower()
        if lower.endswith(".qubo"):
            fmt = "qubo"
        elif lower.endswith(".dat"):
            fmt = "qaplib"
        else:
            fmt = "gset"
    if fmt == "qubo":
        return read_qubo(path), {}
    if fmt == "qaplib":
        inst = read_qaplib(path)
        model, penalty = inst.to_qubo()
        return model, {"qap": inst, "penalty": penalty}
    if fmt != "gset":
        raise ValueError(f"unknown format {fmt!r} (auto/qubo/qaplib/gset)")
    adjacency = read_gset(path)
    return maxcut_to_qubo(adjacency), {"adjacency": adjacency}


def _tokens(path) -> list[str]:
    text = Path(path).read_text()
    return [
        tok
        for line in text.splitlines()
        if not line.lstrip().startswith("#")
        for tok in line.split()
    ]


# ---------------------------------------------------------------------------
# Gset (MaxCut)
# ---------------------------------------------------------------------------

def read_gset(path) -> np.ndarray:
    """Read a Gset MaxCut file into a symmetric adjacency matrix."""
    toks = _tokens(path)
    if len(toks) < 2:
        raise ValueError(f"{path}: missing 'n m' header")
    n, m = int(toks[0]), int(toks[1])
    body = toks[2:]
    if len(body) != 3 * m:
        raise ValueError(
            f"{path}: expected {3 * m} edge tokens for m={m}, got {len(body)}"
        )
    adj = np.zeros((n, n), dtype=np.int64)
    for e in range(m):
        i, j, w = int(body[3 * e]) - 1, int(body[3 * e + 1]) - 1, int(body[3 * e + 2])
        if not (0 <= i < n and 0 <= j < n):
            raise ValueError(f"{path}: edge ({i + 1}, {j + 1}) out of range")
        if i == j:
            raise ValueError(f"{path}: self-loop on node {i + 1}")
        adj[i, j] = w
        adj[j, i] = w
    return adj


def write_gset(path, adjacency: np.ndarray) -> None:
    """Write a symmetric adjacency matrix in Gset format (1-based)."""
    adj = np.asarray(adjacency)
    ii, jj = np.nonzero(np.triu(adj, 1))
    lines = [f"{adj.shape[0]} {len(ii)}"]
    lines += [f"{i + 1} {j + 1} {adj[i, j]}" for i, j in zip(ii, jj)]
    Path(path).write_text("\n".join(lines) + "\n")


# ---------------------------------------------------------------------------
# QAPLIB
# ---------------------------------------------------------------------------

def read_qaplib(path, name: str = "") -> QAPInstance:
    """Read a QAPLIB ``.dat`` file (n, flow matrix, distance matrix)."""
    toks = _tokens(path)
    if not toks:
        raise ValueError(f"{path}: empty file")
    n = int(toks[0])
    need = 1 + 2 * n * n
    if len(toks) != need:
        raise ValueError(
            f"{path}: expected {need} numbers for n={n}, got {len(toks)}"
        )
    values = np.array([int(t) for t in toks[1:]], dtype=np.int64)
    flow = values[: n * n].reshape(n, n)
    dist = values[n * n :].reshape(n, n)
    # QAPLIB instances may carry non-zero diagonals; the QUBO reduction
    # requires zero diagonals and the diagonal cost of a permutation is a
    # constant, so strip it here.
    np.fill_diagonal(flow, 0)
    np.fill_diagonal(dist, 0)
    return QAPInstance(flow, dist, name=name or Path(path).stem)


def write_qaplib(path, instance: QAPInstance) -> None:
    """Write a QAP instance in QAPLIB ``.dat`` layout."""
    n = instance.n

    def block(mat):
        return "\n".join(" ".join(str(v) for v in row) for row in mat)

    Path(path).write_text(
        f"{n}\n\n{block(instance.flow)}\n\n{block(instance.dist)}\n"
    )


# ---------------------------------------------------------------------------
# QUBO coordinate format
# ---------------------------------------------------------------------------

def read_qubo(path) -> QUBOModel:
    """Read a QUBO from ``i j w`` coordinate lines (0-based, # comments).

    The first non-comment line must be ``n`` (the variable count); diagonal
    entries are linear terms.  Duplicate coordinates accumulate.
    """
    toks = _tokens(path)
    if not toks:
        raise ValueError(f"{path}: empty file")
    n = int(toks[0])
    body = toks[1:]
    if len(body) % 3 != 0:
        raise ValueError(f"{path}: coordinate lines must be 'i j w' triples")
    terms: dict[tuple[int, int], float] = {}
    for e in range(len(body) // 3):
        i, j = int(body[3 * e]), int(body[3 * e + 1])
        w = float(body[3 * e + 2])
        terms[(i, j)] = terms.get((i, j), 0) + w
    return QUBOModel.from_dict(n, terms, name=Path(path).stem)


def write_qubo(path, model: QUBOModel) -> None:
    """Write a model's canonical upper-triangular terms as coordinates."""
    lines = [f"# QUBO {model.name}", f"{model.n}"]
    for (i, j), w in sorted(model.to_dict().items()):
        lines.append(f"{i} {j} {w}")
    Path(path).write_text("\n".join(lines) + "\n")
